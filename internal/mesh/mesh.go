// Package mesh builds the unstructured spherical meshes the ocean model
// runs on. MPAS-Ocean uses spherical centroidal Voronoi tessellations; we
// construct the classic icosahedral variant — a subdivided icosahedron whose
// vertices become (mostly hexagonal) Voronoi cells, with the triangle
// circumcenters as the dual vertices. The resulting structure carries the
// full primal/dual connectivity (cellsOnEdge, verticesOnEdge, edgesOnCell,
// edgesOnVertex with orientation signs) that a TRiSK-style C-grid solver
// needs.
package mesh

import (
	"fmt"
	"math"
	"sort"
)

// EarthRadius is the mean Earth radius in meters, the default sphere for
// climate-scale meshes.
const EarthRadius = 6.371e6

// Cell is a (mostly hexagonal) Voronoi cell of the primal mesh. Twelve cells
// of every icosahedral mesh are pentagons.
type Cell struct {
	Center   Vec3    // unit direction of the cell generator point
	Lat, Lon float64 // geographic coordinates of the center (radians)
	Area     float64 // spherical cell area (m^2)

	// Edges lists the indices of the cell's edges in counterclockwise
	// order. EdgeSigns[k] is +1 when the normal of Edges[k] points out of
	// this cell, -1 otherwise. Neighbors[k] is the cell across Edges[k],
	// and Vertices lists the dual vertices (cell polygon corners) in the
	// same counterclockwise order.
	Edges     []int
	EdgeSigns []int8
	Neighbors []int
	Vertices  []int
}

// Edge is a face between two Voronoi cells. Its normal direction is the
// unit tangent pointing from Cells[0] toward Cells[1]; velocity unknowns of
// the C-grid solver live here.
type Edge struct {
	Cells    [2]int  // adjacent cells; normal points 0 -> 1
	Vertices [2]int  // endpoints of the shared Voronoi face (dual vertices)
	Midpoint Vec3    // unit direction of the edge midpoint
	Normal   Vec3    // unit tangent at Midpoint, from Cells[0] to Cells[1]
	Tangent  Vec3    // unit tangent at Midpoint, 90 deg CCW from Normal
	Lat, Lon float64 // geographic coordinates of the midpoint
	Dc       float64 // great-circle distance between the two cell centers (m)
	Dv       float64 // great-circle length of the Voronoi face (m)
}

// Vertex is a corner of the Voronoi cells — equivalently, a triangle of the
// dual Delaunay mesh. Vorticity lives here in a C-grid solver.
type Vertex struct {
	Pos   Vec3    // unit direction (triangle circumcenter)
	Area  float64 // area of the dual triangle (m^2)
	Cells [3]int  // corners of the dual triangle, counterclockwise

	// Edges lists the three primal edges whose Dc segments bound the dual
	// triangle. EdgeSigns[k] is +1 when traversing Edges[k]'s normal
	// direction (cell 0 -> cell 1) is counterclockwise around this vertex.
	Edges     [3]int
	EdgeSigns [3]int8
}

// Mesh is an icosahedral spherical Voronoi mesh with full primal/dual
// connectivity.
type Mesh struct {
	Radius       float64
	Subdivisions int
	Cells        []Cell
	Edges        []Edge
	Vertices     []Vertex
}

// NCells returns the number of primal cells.
func (m *Mesh) NCells() int { return len(m.Cells) }

// NEdges returns the number of edges.
func (m *Mesh) NEdges() int { return len(m.Edges) }

// NVertices returns the number of dual vertices.
func (m *Mesh) NVertices() int { return len(m.Vertices) }

// MeanCellSpacing returns the average distance between adjacent cell
// centers, the mesh's nominal resolution (m).
func (m *Mesh) MeanCellSpacing() float64 {
	if len(m.Edges) == 0 {
		return 0
	}
	var s float64
	for i := range m.Edges {
		s += m.Edges[i].Dc
	}
	return s / float64(len(m.Edges))
}

// NewIcosphere builds the icosahedral Voronoi mesh obtained from
// `subdivisions` rounds of 4-way triangle subdivision of the icosahedron,
// on a sphere of the given radius. The mesh has 10*4^s + 2 cells. Values of
// s from 3 (642 cells) to 6 (40962 cells) are typical here; s must be in
// [0, 8] to bound memory.
func NewIcosphere(subdivisions int, radius float64) (*Mesh, error) {
	if subdivisions < 0 || subdivisions > 8 {
		return nil, fmt.Errorf("mesh: subdivisions %d out of range [0, 8]", subdivisions)
	}
	if radius <= 0 {
		return nil, fmt.Errorf("mesh: radius must be positive, got %g", radius)
	}
	pts, tris := icosahedron()
	for s := 0; s < subdivisions; s++ {
		pts, tris = subdivide(pts, tris)
	}
	m := &Mesh{Radius: radius, Subdivisions: subdivisions}
	if err := m.buildFromTriangulation(pts, tris); err != nil {
		return nil, err
	}
	return m, nil
}

// icosahedron returns the 12 unit vertices and 20 faces of a regular
// icosahedron. Faces are oriented counterclockwise seen from outside.
func icosahedron() ([]Vec3, [][3]int) {
	phi := (1 + math.Sqrt(5)) / 2
	raw := []Vec3{
		{-1, phi, 0}, {1, phi, 0}, {-1, -phi, 0}, {1, -phi, 0},
		{0, -1, phi}, {0, 1, phi}, {0, -1, -phi}, {0, 1, -phi},
		{phi, 0, -1}, {phi, 0, 1}, {-phi, 0, -1}, {-phi, 0, 1},
	}
	pts := make([]Vec3, len(raw))
	for i, p := range raw {
		pts[i] = p.Normalize()
	}
	tris := [][3]int{
		{0, 11, 5}, {0, 5, 1}, {0, 1, 7}, {0, 7, 10}, {0, 10, 11},
		{1, 5, 9}, {5, 11, 4}, {11, 10, 2}, {10, 7, 6}, {7, 1, 8},
		{3, 9, 4}, {3, 4, 2}, {3, 2, 6}, {3, 6, 8}, {3, 8, 9},
		{4, 9, 5}, {2, 4, 11}, {6, 2, 10}, {8, 6, 7}, {9, 8, 1},
	}
	// Ensure outward CCW orientation for every face.
	for i, t := range tris {
		a, b, c := pts[t[0]], pts[t[1]], pts[t[2]]
		if b.Sub(a).Cross(c.Sub(a)).Dot(a.Add(b).Add(c)) < 0 {
			tris[i] = [3]int{t[0], t[2], t[1]}
		}
	}
	return pts, tris
}

// subdivide splits each triangle into four, creating midpoint vertices
// (deduplicated per edge) projected onto the unit sphere.
func subdivide(pts []Vec3, tris [][3]int) ([]Vec3, [][3]int) {
	type ekey struct{ a, b int }
	mid := make(map[ekey]int, len(tris)*3/2)
	midpoint := func(a, b int) int {
		k := ekey{a, b}
		if a > b {
			k = ekey{b, a}
		}
		if idx, ok := mid[k]; ok {
			return idx
		}
		p := pts[a].Add(pts[b]).Normalize()
		pts = append(pts, p)
		idx := len(pts) - 1
		mid[k] = idx
		return idx
	}
	out := make([][3]int, 0, 4*len(tris))
	for _, t := range tris {
		ab := midpoint(t[0], t[1])
		bc := midpoint(t[1], t[2])
		ca := midpoint(t[2], t[0])
		out = append(out,
			[3]int{t[0], ab, ca},
			[3]int{t[1], bc, ab},
			[3]int{t[2], ca, bc},
			[3]int{ab, bc, ca},
		)
	}
	return pts, out
}

// buildFromTriangulation derives the full Voronoi mesh (cells, edges,
// vertices, orientation signs, metrics) from a spherical Delaunay
// triangulation given as points and CCW triangles.
func (m *Mesh) buildFromTriangulation(pts []Vec3, tris [][3]int) error {
	nc := len(pts)
	nv := len(tris)

	// Dual vertices: triangle circumcenters.
	m.Vertices = make([]Vertex, nv)
	for vi, t := range tris {
		a, b, c := pts[t[0]], pts[t[1]], pts[t[2]]
		cc := Circumcenter(a, b, c)
		m.Vertices[vi] = Vertex{
			Pos:   cc,
			Area:  SphericalTriangleArea(a, b, c, m.Radius),
			Cells: t,
		}
		if m.Vertices[vi].Area <= 0 {
			return fmt.Errorf("mesh: non-positive dual triangle area at vertex %d", vi)
		}
	}

	// Edges: unique triangle edges. Each is shared by exactly two triangles
	// on a closed surface.
	type ekey struct{ a, b int }
	edgeIndex := make(map[ekey]int, nv*3/2)
	canon := func(a, b int) ekey {
		if a > b {
			a, b = b, a
		}
		return ekey{a, b}
	}
	m.Edges = m.Edges[:0]
	for vi, t := range tris {
		for k := 0; k < 3; k++ {
			a, b := t[k], t[(k+1)%3]
			key := canon(a, b)
			ei, ok := edgeIndex[key]
			if !ok {
				m.Edges = append(m.Edges, Edge{
					Cells:    [2]int{key.a, key.b},
					Vertices: [2]int{-1, -1},
				})
				ei = len(m.Edges) - 1
				edgeIndex[key] = ei
			}
			e := &m.Edges[ei]
			if e.Vertices[0] == -1 {
				e.Vertices[0] = vi
			} else if e.Vertices[1] == -1 {
				e.Vertices[1] = vi
			} else {
				return fmt.Errorf("mesh: edge %d-%d shared by more than two triangles", key.a, key.b)
			}
		}
	}
	for ei := range m.Edges {
		e := &m.Edges[ei]
		if e.Vertices[1] == -1 {
			return fmt.Errorf("mesh: boundary edge %d on a closed sphere", ei)
		}
		c0, c1 := pts[e.Cells[0]], pts[e.Cells[1]]
		e.Midpoint = c0.Add(c1).Normalize()
		e.Lat, e.Lon = e.Midpoint.LatLon()
		e.Normal = ProjectToTangent(e.Midpoint, c1.Sub(c0)).Normalize()
		e.Tangent = e.Midpoint.Cross(e.Normal) // 90 deg CCW from Normal
		e.Dc = ArcLength(c0, c1, m.Radius)
		e.Dv = ArcLength(m.Vertices[e.Vertices[0]].Pos, m.Vertices[e.Vertices[1]].Pos, m.Radius)
		if e.Dc <= 0 || e.Dv <= 0 {
			return fmt.Errorf("mesh: degenerate edge %d (dc=%g, dv=%g)", ei, e.Dc, e.Dv)
		}
	}

	// Cells: for each generator point, gather incident edges and dual
	// vertices and order them counterclockwise around the center.
	cellEdges := make([][]int, nc)
	for ei := range m.Edges {
		e := &m.Edges[ei]
		cellEdges[e.Cells[0]] = append(cellEdges[e.Cells[0]], ei)
		cellEdges[e.Cells[1]] = append(cellEdges[e.Cells[1]], ei)
	}
	cellVerts := make([][]int, nc)
	for vi := range m.Vertices {
		for _, ci := range m.Vertices[vi].Cells {
			cellVerts[ci] = append(cellVerts[ci], vi)
		}
	}
	m.Cells = make([]Cell, nc)
	for ci := 0; ci < nc; ci++ {
		center := pts[ci]
		lat, lon := center.LatLon()
		c := Cell{Center: center, Lat: lat, Lon: lon}

		east, north := TangentBasis(center)
		angleOf := func(p Vec3) float64 {
			d := ProjectToTangent(center, p.Sub(center))
			return math.Atan2(d.Dot(north), d.Dot(east))
		}

		edges := append([]int(nil), cellEdges[ci]...)
		sort.Slice(edges, func(i, j int) bool {
			return angleOf(m.Edges[edges[i]].Midpoint) < angleOf(m.Edges[edges[j]].Midpoint)
		})
		verts := append([]int(nil), cellVerts[ci]...)
		sort.Slice(verts, func(i, j int) bool {
			return angleOf(m.Vertices[verts[i]].Pos) < angleOf(m.Vertices[verts[j]].Pos)
		})
		if len(edges) != len(verts) {
			return fmt.Errorf("mesh: cell %d has %d edges but %d vertices", ci, len(edges), len(verts))
		}

		c.Edges = edges
		c.Vertices = verts
		c.EdgeSigns = make([]int8, len(edges))
		c.Neighbors = make([]int, len(edges))
		for k, ei := range edges {
			e := &m.Edges[ei]
			if e.Cells[0] == ci {
				c.EdgeSigns[k] = 1
				c.Neighbors[k] = e.Cells[1]
			} else {
				c.EdgeSigns[k] = -1
				c.Neighbors[k] = e.Cells[0]
			}
		}

		corners := make([]Vec3, len(verts))
		for k, vi := range verts {
			corners[k] = m.Vertices[vi].Pos
		}
		c.Area = SphericalPolygonArea(corners, m.Radius)
		if c.Area <= 0 {
			return fmt.Errorf("mesh: non-positive area %g for cell %d", c.Area, ci)
		}
		m.Cells[ci] = c
	}

	// Vertex edge lists with circulation signs: EdgeSigns[k] = +1 when the
	// edge's cell0 -> cell1 direction is counterclockwise around the vertex.
	vertEdges := make([][]int, nv)
	for ei := range m.Edges {
		e := &m.Edges[ei]
		vertEdges[e.Vertices[0]] = append(vertEdges[e.Vertices[0]], ei)
		vertEdges[e.Vertices[1]] = append(vertEdges[e.Vertices[1]], ei)
	}
	for vi := range m.Vertices {
		v := &m.Vertices[vi]
		if len(vertEdges[vi]) != 3 {
			return fmt.Errorf("mesh: vertex %d has %d incident edges, want 3", vi, len(vertEdges[vi]))
		}
		copy(v.Edges[:], vertEdges[vi])
		for k, ei := range v.Edges {
			e := &m.Edges[ei]
			a := pts[e.Cells[0]]
			b := pts[e.Cells[1]]
			// a -> b is CCW around v iff (a x b) . v > 0.
			if a.Cross(b).Dot(v.Pos) > 0 {
				v.EdgeSigns[k] = 1
			} else {
				v.EdgeSigns[k] = -1
			}
		}
	}
	return nil
}

// NearestCell returns the index of the cell whose generator point is
// closest to the unit direction p, using a greedy walk over the Voronoi
// adjacency graph starting from `start` (pass 0 when unknown). On a Voronoi
// mesh the walk converges to the global nearest cell.
func (m *Mesh) NearestCell(p Vec3, start int) int {
	if start < 0 || start >= len(m.Cells) {
		start = 0
	}
	p = p.Normalize()
	cur := start
	best := m.Cells[cur].Center.Dot(p)
	for {
		improved := false
		for _, nb := range m.Cells[cur].Neighbors {
			if d := m.Cells[nb].Center.Dot(p); d > best {
				best, cur = d, nb
				improved = true
			}
		}
		if !improved {
			return cur
		}
	}
}

// TotalArea returns the sum of all cell areas; for a correct mesh it equals
// the sphere area 4*pi*R^2 up to rounding.
func (m *Mesh) TotalArea() float64 {
	var s float64
	for i := range m.Cells {
		s += m.Cells[i].Area
	}
	return s
}

package mesh

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestVec3Arithmetic(t *testing.T) {
	a := Vec3{1, 2, 3}
	b := Vec3{4, 5, 6}
	if a.Add(b) != (Vec3{5, 7, 9}) {
		t.Errorf("Add = %v", a.Add(b))
	}
	if b.Sub(a) != (Vec3{3, 3, 3}) {
		t.Errorf("Sub = %v", b.Sub(a))
	}
	if a.Scale(2) != (Vec3{2, 4, 6}) {
		t.Errorf("Scale = %v", a.Scale(2))
	}
	if a.Dot(b) != 32 {
		t.Errorf("Dot = %v", a.Dot(b))
	}
	if got := (Vec3{1, 0, 0}).Cross(Vec3{0, 1, 0}); got != (Vec3{0, 0, 1}) {
		t.Errorf("Cross = %v", got)
	}
	if math.Abs((Vec3{3, 4, 0}).Norm()-5) > 1e-12 {
		t.Errorf("Norm = %v", (Vec3{3, 4, 0}).Norm())
	}
	n := (Vec3{0, 0, 9}).Normalize()
	if n != (Vec3{0, 0, 1}) {
		t.Errorf("Normalize = %v", n)
	}
}

func TestNormalizeZeroPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Normalize of zero vector did not panic")
		}
	}()
	Vec3{}.Normalize()
}

func TestLatLonRoundTrip(t *testing.T) {
	f := func(latRaw, lonRaw float64) bool {
		lat := math.Mod(latRaw, math.Pi/2*0.999)
		lon := math.Mod(lonRaw, math.Pi*0.999)
		if math.IsNaN(lat) || math.IsNaN(lon) {
			return true
		}
		v := FromLatLon(lat, lon)
		gotLat, gotLon := v.LatLon()
		return math.Abs(gotLat-lat) < 1e-9 && math.Abs(gotLon-lon) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestFromLatLonIsUnit(t *testing.T) {
	for _, lat := range []float64{-math.Pi / 2, -0.3, 0, 1.1, math.Pi / 2} {
		for _, lon := range []float64{-3, -1, 0, 2, 3.1} {
			if n := FromLatLon(lat, lon).Norm(); math.Abs(n-1) > 1e-12 {
				t.Fatalf("FromLatLon(%v,%v) norm = %v", lat, lon, n)
			}
		}
	}
}

func TestArcLength(t *testing.T) {
	a := Vec3{1, 0, 0}
	b := Vec3{0, 1, 0}
	if d := ArcLength(a, b, 1); math.Abs(d-math.Pi/2) > 1e-12 {
		t.Errorf("quarter arc = %v, want pi/2", d)
	}
	if d := ArcLength(a, a.Scale(-1).Normalize(), 2); math.Abs(d-2*math.Pi) > 1e-12 {
		t.Errorf("antipodal arc on r=2 = %v, want 2pi", d)
	}
	if d := ArcLength(a, a, 1); d != 0 {
		t.Errorf("zero arc = %v", d)
	}
}

func TestSphericalTriangleAreaOctant(t *testing.T) {
	a, b, c := Vec3{1, 0, 0}, Vec3{0, 1, 0}, Vec3{0, 0, 1}
	got := SphericalTriangleArea(a, b, c, 1)
	if math.Abs(got-math.Pi/2) > 1e-12 {
		t.Errorf("octant area = %v, want pi/2", got)
	}
	// Reversed orientation gives the negated area.
	if rev := SphericalTriangleArea(a, c, b, 1); math.Abs(rev+got) > 1e-12 {
		t.Errorf("reversed area = %v, want %v", rev, -got)
	}
	// Radius scaling is quadratic.
	if s := SphericalTriangleArea(a, b, c, 3); math.Abs(s-9*got) > 1e-9 {
		t.Errorf("scaled area = %v, want %v", s, 9*got)
	}
}

func TestSphericalPolygonArea(t *testing.T) {
	// The equatorial "belt" quadrilateral covering a hemisphere boundary:
	// four points around the equator bound the northern hemisphere when
	// traversed CCW seen from the north pole.
	corners := []Vec3{{1, 0, 0}, {0, 1, 0}, {-1, 0, 0}, {0, -1, 0}}
	got := SphericalPolygonArea(corners, 1)
	if math.Abs(got-2*math.Pi) > 1e-12 {
		t.Errorf("hemisphere area = %v, want 2pi", got)
	}
	if SphericalPolygonArea(corners[:2], 1) != 0 {
		t.Error("degenerate polygon should have zero area")
	}
}

func TestTangentBasis(t *testing.T) {
	pts := []Vec3{
		FromLatLon(0.3, 1.2),
		FromLatLon(-1.2, -2.5),
		{0, 0, 1},  // north pole
		{0, 0, -1}, // south pole
	}
	for _, p := range pts {
		e, n := TangentBasis(p)
		if math.Abs(e.Norm()-1) > 1e-12 || math.Abs(n.Norm()-1) > 1e-12 {
			t.Fatalf("basis at %v not unit", p)
		}
		if math.Abs(e.Dot(n)) > 1e-12 {
			t.Fatalf("basis at %v not orthogonal", p)
		}
		if math.Abs(e.Dot(p.Normalize())) > 1e-12 || math.Abs(n.Dot(p.Normalize())) > 1e-12 {
			t.Fatalf("basis at %v not tangent", p)
		}
		// Right-handed: east x north = up.
		if e.Cross(n).Sub(p.Normalize()).Norm() > 1e-9 {
			t.Fatalf("basis at %v not right-handed", p)
		}
	}
	// Away from the poles, north must point toward +z.
	_, n := TangentBasis(FromLatLon(0.1, 0.7))
	if n[2] <= 0 {
		t.Error("north does not point northward")
	}
}

func TestProjectToTangent(t *testing.T) {
	p := FromLatLon(0.4, -1.1)
	w := Vec3{1, 2, 3}
	tproj := ProjectToTangent(p, w)
	if math.Abs(tproj.Dot(p)) > 1e-12 {
		t.Errorf("projection has radial component %v", tproj.Dot(p))
	}
}

func TestCircumcenterEquidistant(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 50; trial++ {
		a := randUnit(rng)
		b := ProjectToTangent(a, randUnit(rng)).Normalize().Scale(0.2).Add(a).Normalize()
		c := ProjectToTangent(a, randUnit(rng)).Normalize().Scale(0.2).Add(a).Normalize()
		if b.Sub(a).Cross(c.Sub(a)).Norm() < 1e-6 {
			continue // nearly collinear draw
		}
		cc := Circumcenter(a, b, c)
		da := ArcLength(cc, a, 1)
		db := ArcLength(cc, b, 1)
		dc := ArcLength(cc, c, 1)
		if math.Abs(da-db) > 1e-9 || math.Abs(da-dc) > 1e-9 {
			t.Fatalf("trial %d: circumcenter distances %v %v %v", trial, da, db, dc)
		}
		// The circumcenter must lie on the triangle's side of the sphere.
		if cc.Dot(a.Add(b).Add(c)) < 0 {
			t.Fatalf("trial %d: circumcenter on wrong hemisphere", trial)
		}
	}
}

func TestCircumcenterDegeneratePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("degenerate circumcenter did not panic")
		}
	}()
	a := Vec3{1, 0, 0}
	Circumcenter(a, a, a)
}

func randUnit(rng *rand.Rand) Vec3 {
	for {
		v := Vec3{rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64()}
		if v.Norm() > 1e-6 {
			return v.Normalize()
		}
	}
}

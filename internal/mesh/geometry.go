package mesh

import (
	"fmt"
	"math"
)

// Vec3 is a point or direction in 3-space. Mesh geometry is done in
// Cartesian coordinates on the unit sphere and scaled by the sphere radius
// only when physical lengths and areas are reported.
type Vec3 [3]float64

// Add returns v + w.
func (v Vec3) Add(w Vec3) Vec3 { return Vec3{v[0] + w[0], v[1] + w[1], v[2] + w[2]} }

// Sub returns v - w.
func (v Vec3) Sub(w Vec3) Vec3 { return Vec3{v[0] - w[0], v[1] - w[1], v[2] - w[2]} }

// Scale returns s*v.
func (v Vec3) Scale(s float64) Vec3 { return Vec3{s * v[0], s * v[1], s * v[2]} }

// Dot returns the inner product v . w.
func (v Vec3) Dot(w Vec3) float64 { return v[0]*w[0] + v[1]*w[1] + v[2]*w[2] }

// Cross returns the cross product v x w.
func (v Vec3) Cross(w Vec3) Vec3 {
	return Vec3{
		v[1]*w[2] - v[2]*w[1],
		v[2]*w[0] - v[0]*w[2],
		v[0]*w[1] - v[1]*w[0],
	}
}

// Norm returns the Euclidean length of v.
func (v Vec3) Norm() float64 { return math.Sqrt(v.Dot(v)) }

// Normalize returns v scaled to unit length. It panics on the zero vector,
// which always indicates a geometry bug in this package.
func (v Vec3) Normalize() Vec3 {
	n := v.Norm()
	if n == 0 {
		panic("mesh: normalizing zero vector")
	}
	return v.Scale(1 / n)
}

// String formats the vector for debugging.
func (v Vec3) String() string { return fmt.Sprintf("(%.4g, %.4g, %.4g)", v[0], v[1], v[2]) }

// LatLon returns the geographic latitude and longitude (radians) of the
// direction v. Latitude is in [-pi/2, pi/2], longitude in (-pi, pi].
func (v Vec3) LatLon() (lat, lon float64) {
	u := v.Normalize()
	lat = math.Asin(math.Max(-1, math.Min(1, u[2])))
	lon = math.Atan2(u[1], u[0])
	return lat, lon
}

// FromLatLon returns the unit vector at geographic coordinates (radians).
func FromLatLon(lat, lon float64) Vec3 {
	cl := math.Cos(lat)
	return Vec3{cl * math.Cos(lon), cl * math.Sin(lon), math.Sin(lat)}
}

// ArcLength returns the great-circle distance between unit vectors a and b
// on a sphere of radius r.
func ArcLength(a, b Vec3, r float64) float64 {
	// atan2 form is accurate for both small and near-antipodal separations.
	return r * math.Atan2(a.Cross(b).Norm(), a.Dot(b))
}

// SphericalTriangleArea returns the signed area of the spherical triangle
// with unit-vector corners a, b, c on a sphere of radius r, positive when
// a->b->c is counterclockwise seen from outside the sphere
// (van Oosterom-Strackee formula).
func SphericalTriangleArea(a, b, c Vec3, r float64) float64 {
	num := a.Dot(b.Cross(c))
	den := 1 + a.Dot(b) + b.Dot(c) + c.Dot(a)
	return 2 * math.Atan2(num, den) * r * r
}

// SphericalPolygonArea returns the area of the spherical polygon with
// ordered unit-vector corners on a sphere of radius r, via the spherical
// Gauss-Bonnet theorem: A = r^2 * (2*pi - sum of exterior turning angles).
// Corners must be ordered counterclockwise to obtain the enclosed area; a
// clockwise ordering yields the area of the complement.
func SphericalPolygonArea(corners []Vec3, r float64) float64 {
	n := len(corners)
	if n < 3 {
		return 0
	}
	var turnSum float64
	for i := 0; i < n; i++ {
		prev := corners[(i+n-1)%n]
		cur := corners[i]
		next := corners[(i+1)%n]
		up := cur.Normalize()
		in := ProjectToTangent(cur, cur.Sub(prev))
		out := ProjectToTangent(cur, next.Sub(cur))
		if in.Norm() == 0 || out.Norm() == 0 {
			continue // repeated corner contributes no turn
		}
		in = in.Normalize()
		out = out.Normalize()
		turnSum += math.Atan2(in.Cross(out).Dot(up), in.Dot(out))
	}
	return (2*math.Pi - turnSum) * r * r
}

// TangentBasis returns local unit east and north vectors at the unit
// direction p. At the poles, where east is degenerate, a fixed but
// consistent basis is returned.
func TangentBasis(p Vec3) (east, north Vec3) {
	up := p.Normalize()
	z := Vec3{0, 0, 1}
	e := z.Cross(up)
	if e.Norm() < 1e-12 {
		// At a pole: pick east along +y, north toward -x (consistent with
		// the limit approaching the north pole along the prime meridian).
		e = Vec3{0, 1, 0}
	}
	east = e.Normalize()
	north = up.Cross(east)
	return east, north
}

// ProjectToTangent removes the radial component of w at unit direction p,
// returning the tangent-plane part.
func ProjectToTangent(p, w Vec3) Vec3 {
	up := p.Normalize()
	return w.Sub(up.Scale(w.Dot(up)))
}

// Circumcenter returns the circumcenter direction of the spherical triangle
// with unit corners a, b, c: the point equidistant from all three, on the
// same side of the sphere as the triangle.
func Circumcenter(a, b, c Vec3) Vec3 {
	n := b.Sub(a).Cross(c.Sub(a))
	if n.Norm() == 0 {
		panic("mesh: degenerate triangle has no circumcenter")
	}
	n = n.Normalize()
	// Orient toward the triangle's side of the sphere.
	if n.Dot(a.Add(b).Add(c)) < 0 {
		n = n.Scale(-1)
	}
	return n
}

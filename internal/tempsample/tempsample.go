// Package tempsample analyzes temporal sampling adequacy: whether an
// output sampling interval is frequent enough to observe the scientific
// phenomenon. The paper's motivating example is eddy tracking — "eddies in
// the ocean exist for hundreds of days while traveling hundreds of
// kilometers; to effectively track their movement, the output has to be
// written once per simulated day (or even hour)" (Section VII) — while
// storage constraints push scientists toward the coarse sampling the paper
// calls temporal sampling (Section II). This package quantifies that
// tension: observation counts, missed-feature fractions, and the coarsest
// interval meeting a science requirement, which the core model then prices
// in storage and energy.
package tempsample

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sort"
)

// ErrInfeasible is returned when no sampling interval can satisfy a
// requirement.
var ErrInfeasible = errors.New("tempsample: requirement cannot be met")

// Observations returns how many sampling points land within a feature of
// the given lifetime when outputs are written every interval. A feature
// born uniformly at random relative to the sampling grid is observed
// floor(lifetime/interval) or that plus one times; this returns the
// guaranteed (worst-case) count.
func Observations(lifetime, interval float64) (int, error) {
	if lifetime < 0 {
		return 0, fmt.Errorf("tempsample: negative lifetime %g", lifetime)
	}
	if interval <= 0 {
		return 0, fmt.Errorf("tempsample: non-positive interval %g", interval)
	}
	return int(math.Floor(lifetime / interval)), nil
}

// ExpectedObservations returns the mean number of observations of a
// feature of the given lifetime under a uniformly random phase offset:
// lifetime/interval (plus the endpoint average of 1).
func ExpectedObservations(lifetime, interval float64) (float64, error) {
	if lifetime < 0 {
		return 0, fmt.Errorf("tempsample: negative lifetime %g", lifetime)
	}
	if interval <= 0 {
		return 0, fmt.Errorf("tempsample: non-positive interval %g", interval)
	}
	return lifetime/interval + 1, nil
}

// MissedFraction returns the fraction of features that are guaranteed to
// be observed fewer than minObs times at the given interval.
func MissedFraction(lifetimes []float64, interval float64, minObs int) (float64, error) {
	if len(lifetimes) == 0 {
		return 0, errors.New("tempsample: empty lifetime sample")
	}
	if minObs < 1 {
		return 0, fmt.Errorf("tempsample: minimum observations %d must be positive", minObs)
	}
	missed := 0
	for _, lt := range lifetimes {
		n, err := Observations(lt, interval)
		if err != nil {
			return 0, err
		}
		if n < minObs {
			missed++
		}
	}
	return float64(missed) / float64(len(lifetimes)), nil
}

// Requirement is a science-driven sampling constraint: at least
// MinObservations samples for at least Coverage of the features.
type Requirement struct {
	MinObservations int
	Coverage        float64 // fraction in (0, 1]
}

// Validate checks the requirement.
func (r Requirement) Validate() error {
	if r.MinObservations < 1 {
		return fmt.Errorf("tempsample: minimum observations %d must be positive", r.MinObservations)
	}
	if r.Coverage <= 0 || r.Coverage > 1 {
		return fmt.Errorf("tempsample: coverage %g outside (0, 1]", r.Coverage)
	}
	return nil
}

// CoarsestInterval returns the largest sampling interval meeting the
// requirement for the observed lifetime population: the longest interval
// such that at least Coverage of features get MinObservations samples.
func CoarsestInterval(lifetimes []float64, req Requirement) (float64, error) {
	if err := req.Validate(); err != nil {
		return 0, err
	}
	if len(lifetimes) == 0 {
		return 0, errors.New("tempsample: empty lifetime sample")
	}
	// A feature of lifetime L gets >= k observations iff interval <= L/k.
	// The requirement holds iff interval <= the (1-Coverage) quantile of
	// L/MinObservations over features (lower quantile, conservative).
	bounds := make([]float64, len(lifetimes))
	for i, lt := range lifetimes {
		if lt < 0 {
			return 0, fmt.Errorf("tempsample: negative lifetime %g", lt)
		}
		bounds[i] = lt / float64(req.MinObservations)
	}
	sort.Float64s(bounds)
	// We may miss at most (1-Coverage) of the features: those with the
	// smallest bounds. The binding constraint is the smallest bound among
	// the features we must cover.
	allowedMisses := int(math.Floor(float64(len(bounds)) * (1 - req.Coverage)))
	idx := allowedMisses
	if idx >= len(bounds) {
		idx = len(bounds) - 1
	}
	iv := bounds[idx]
	if iv <= 0 {
		return 0, fmt.Errorf("%w: a required feature has zero lifetime", ErrInfeasible)
	}
	// Round one ulp toward zero so the boundary feature's floor(L/iv)
	// cannot drop below MinObservations from floating-point rounding.
	return math.Nextafter(iv, 0), nil
}

// SyntheticLifetimes draws n feature lifetimes from an exponential
// distribution with the given mean — the standard minimal model for eddy
// lifetime populations (many short-lived, a long tail of persistent ones;
// the paper cites eddies living "hundreds of days"). The draw is
// deterministic for a given seed.
func SyntheticLifetimes(n int, mean float64, seed int64) ([]float64, error) {
	if n <= 0 {
		return nil, fmt.Errorf("tempsample: non-positive sample size %d", n)
	}
	if mean <= 0 {
		return nil, fmt.Errorf("tempsample: non-positive mean lifetime %g", mean)
	}
	rng := rand.New(rand.NewSource(seed))
	out := make([]float64, n)
	for i := range out {
		out[i] = rng.ExpFloat64() * mean
	}
	return out, nil
}

// Summary describes a lifetime population's sampling behaviour at one
// interval.
type Summary struct {
	Interval         float64
	MeanObservations float64
	MissedFraction   float64 // features with fewer than MinObs observations
	MinObs           int
}

// Sweep evaluates a set of intervals against a lifetime population.
func Sweep(lifetimes []float64, intervals []float64, minObs int) ([]Summary, error) {
	if len(intervals) == 0 {
		return nil, errors.New("tempsample: no intervals")
	}
	out := make([]Summary, 0, len(intervals))
	for _, iv := range intervals {
		mf, err := MissedFraction(lifetimes, iv, minObs)
		if err != nil {
			return nil, err
		}
		var meanObs float64
		for _, lt := range lifetimes {
			eo, err := ExpectedObservations(lt, iv)
			if err != nil {
				return nil, err
			}
			meanObs += eo
		}
		meanObs /= float64(len(lifetimes))
		out = append(out, Summary{Interval: iv, MeanObservations: meanObs, MissedFraction: mf, MinObs: minObs})
	}
	return out, nil
}

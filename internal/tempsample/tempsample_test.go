package tempsample

import (
	"errors"
	"math"
	"testing"
	"testing/quick"
)

const day = 86400.0

func TestObservations(t *testing.T) {
	// A 200-day eddy sampled daily is guaranteed 200 observations.
	n, err := Observations(200*day, day)
	if err != nil || n != 200 {
		t.Errorf("Observations = %d (%v), want 200", n, err)
	}
	// Sampled every 8 days: 25.
	n, err = Observations(200*day, 8*day)
	if err != nil || n != 25 {
		t.Errorf("8-day Observations = %d (%v), want 25", n, err)
	}
	// Shorter than the interval: possibly unseen.
	n, err = Observations(0.5*day, day)
	if err != nil || n != 0 {
		t.Errorf("sub-interval Observations = %d (%v), want 0", n, err)
	}
	if _, err := Observations(-1, day); err == nil {
		t.Error("negative lifetime accepted")
	}
	if _, err := Observations(day, 0); err == nil {
		t.Error("zero interval accepted")
	}
}

func TestExpectedObservations(t *testing.T) {
	eo, err := ExpectedObservations(10*day, day)
	if err != nil || math.Abs(eo-11) > 1e-12 {
		t.Errorf("ExpectedObservations = %v (%v), want 11", eo, err)
	}
	if _, err := ExpectedObservations(-1, day); err == nil {
		t.Error("negative lifetime accepted")
	}
	if _, err := ExpectedObservations(day, -1); err == nil {
		t.Error("negative interval accepted")
	}
}

func TestMissedFraction(t *testing.T) {
	lifetimes := []float64{100 * day, 50 * day, 3 * day, 0.3 * day}
	// Daily sampling, need 5 observations: the 3-day and 0.3-day features
	// miss.
	mf, err := MissedFraction(lifetimes, day, 5)
	if err != nil || mf != 0.5 {
		t.Errorf("MissedFraction = %v (%v), want 0.5", mf, err)
	}
	// Hourly sampling catches everything: even the 0.3-day feature spans
	// 7.2 hours.
	mf, err = MissedFraction(lifetimes, 3600, 5)
	if err != nil || mf != 0 {
		t.Errorf("hourly MissedFraction = %v (%v), want 0", mf, err)
	}
	if _, err := MissedFraction(nil, day, 1); err == nil {
		t.Error("empty sample accepted")
	}
	if _, err := MissedFraction(lifetimes, day, 0); err == nil {
		t.Error("zero min observations accepted")
	}
	if _, err := MissedFraction([]float64{-1}, day, 1); err == nil {
		t.Error("negative lifetime accepted")
	}
}

func TestRequirementValidate(t *testing.T) {
	if err := (Requirement{MinObservations: 10, Coverage: 0.9}).Validate(); err != nil {
		t.Error(err)
	}
	if err := (Requirement{MinObservations: 0, Coverage: 0.9}).Validate(); err == nil {
		t.Error("zero observations accepted")
	}
	if err := (Requirement{MinObservations: 1, Coverage: 0}).Validate(); err == nil {
		t.Error("zero coverage accepted")
	}
	if err := (Requirement{MinObservations: 1, Coverage: 1.1}).Validate(); err == nil {
		t.Error("over-unity coverage accepted")
	}
}

func TestCoarsestInterval(t *testing.T) {
	lifetimes := []float64{300 * day, 200 * day, 100 * day, 10 * day}
	// Full coverage with 10 observations: bound by the 10-day feature.
	iv, err := CoarsestInterval(lifetimes, Requirement{MinObservations: 10, Coverage: 1})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(iv-day) > 1e-9 {
		t.Errorf("interval = %v days, want 1", iv/day)
	}
	// Allowing 25% misses drops the 10-day feature: bound by 100 days.
	iv, err = CoarsestInterval(lifetimes, Requirement{MinObservations: 10, Coverage: 0.75})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(iv-10*day) > 1e-9 {
		t.Errorf("interval = %v days, want 10", iv/day)
	}
	// Check the returned interval actually satisfies the requirement.
	mf, err := MissedFraction(lifetimes, iv, 10)
	if err != nil {
		t.Fatal(err)
	}
	if 1-mf < 0.75 {
		t.Errorf("coverage at returned interval = %v", 1-mf)
	}
	// Infeasible: zero-lifetime feature with full coverage.
	if _, err := CoarsestInterval([]float64{0}, Requirement{MinObservations: 1, Coverage: 1}); !errors.Is(err, ErrInfeasible) {
		t.Errorf("zero-lifetime err = %v, want ErrInfeasible", err)
	}
	if _, err := CoarsestInterval(nil, Requirement{MinObservations: 1, Coverage: 1}); err == nil {
		t.Error("empty sample accepted")
	}
	if _, err := CoarsestInterval(lifetimes, Requirement{}); err == nil {
		t.Error("invalid requirement accepted")
	}
	if _, err := CoarsestInterval([]float64{-day}, Requirement{MinObservations: 1, Coverage: 1}); err == nil {
		t.Error("negative lifetime accepted")
	}
}

func TestCoarsestIntervalProperty(t *testing.T) {
	// The returned interval must always satisfy the requirement, and
	// doubling it must violate it (for strict populations).
	f := func(seed int64, nRaw uint8, minObsRaw uint8) bool {
		n := int(nRaw)%50 + 10
		minObs := int(minObsRaw)%20 + 1
		lifetimes, err := SyntheticLifetimes(n, 120*day, seed)
		if err != nil {
			return false
		}
		req := Requirement{MinObservations: minObs, Coverage: 0.8}
		iv, err := CoarsestInterval(lifetimes, req)
		if err != nil {
			return true // infeasible draws are fine
		}
		mf, err := MissedFraction(lifetimes, iv, minObs)
		if err != nil {
			return false
		}
		return 1-mf >= req.Coverage-1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestSyntheticLifetimes(t *testing.T) {
	lts, err := SyntheticLifetimes(10000, 120*day, 7)
	if err != nil {
		t.Fatal(err)
	}
	var sum float64
	for _, lt := range lts {
		if lt < 0 {
			t.Fatal("negative lifetime drawn")
		}
		sum += lt
	}
	mean := sum / float64(len(lts))
	if math.Abs(mean-120*day)/(120*day) > 0.05 {
		t.Errorf("sample mean = %v days, want ~120", mean/day)
	}
	// Deterministic for a fixed seed.
	again, _ := SyntheticLifetimes(10000, 120*day, 7)
	if again[0] != lts[0] || again[9999] != lts[9999] {
		t.Error("seeded draw not deterministic")
	}
	if _, err := SyntheticLifetimes(0, 1, 1); err == nil {
		t.Error("zero size accepted")
	}
	if _, err := SyntheticLifetimes(1, 0, 1); err == nil {
		t.Error("zero mean accepted")
	}
}

func TestSweep(t *testing.T) {
	lifetimes, err := SyntheticLifetimes(2000, 120*day, 3)
	if err != nil {
		t.Fatal(err)
	}
	intervals := []float64{3600, day, 8 * day, 30 * day}
	sums, err := Sweep(lifetimes, intervals, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(sums) != 4 {
		t.Fatalf("sweep rows = %d", len(sums))
	}
	// Missed fraction grows and mean observations shrink as the interval
	// coarsens.
	for i := 1; i < len(sums); i++ {
		if sums[i].MissedFraction < sums[i-1].MissedFraction {
			t.Errorf("missed fraction not monotone at %d: %v < %v",
				i, sums[i].MissedFraction, sums[i-1].MissedFraction)
		}
		if sums[i].MeanObservations >= sums[i-1].MeanObservations {
			t.Errorf("mean observations not decreasing at %d", i)
		}
	}
	// Hourly sampling of 120-day-mean eddies misses almost nothing.
	if sums[0].MissedFraction > 0.01 {
		t.Errorf("hourly missed fraction = %v", sums[0].MissedFraction)
	}
	// Thirty-day sampling misses most of the population.
	if sums[3].MissedFraction < 0.5 {
		t.Errorf("30-day missed fraction = %v", sums[3].MissedFraction)
	}
	if _, err := Sweep(lifetimes, nil, 10); err == nil {
		t.Error("empty interval list accepted")
	}
	if _, err := Sweep(lifetimes, []float64{0}, 10); err == nil {
		t.Error("zero interval accepted")
	}
}

// Package livemodel fits the paper's cost model online, while a run is
// still executing. The offline pipeline (internal/core, cmd/modelfit)
// fits
//
//	t = t_sim + α·S_io + β·N_viz
//
// over finished characterization runs; this package maintains the same
// fit continuously from per-sample observations streamed out of LiveRun
// or the simulated pipeline, so the coefficients, their residuals, and
// an energy burn-rate are available *during* the run — the first half of
// the ROADMAP's "online model-driven control" item, and the signal a
// later adaptive-cadence / admission-control loop consumes.
//
// The estimator is a windowed recursive least-squares fit over the
// normal equations: each observation contributes a rank-one update to
// X'X and X'y, observations expiring from the sliding window contribute
// the matching downdate, and the 3x3 system is re-solved after every
// update with a hand-rolled pivoted elimination (no allocation on the
// hot path). Two properties are contractual, mirroring the rest of the
// observability stack:
//
//   - Determinism. The fit is a pure function of the observation
//     sequence: same seed → same observations → byte-identical /model
//     JSON, anomaly log, and convergence table. No wall-clock time or
//     map iteration enters the numerics.
//
//   - Hot-path economy. Observe performs no heap allocation in steady
//     state (≤ 1 alloc/op including ring growth on unbounded windows),
//     so feeding the estimator from the driver goroutine does not
//     perturb the run being modeled.
//
// Residual-driven anomaly detection rides on the fit: each observation
// is first predicted from the current coefficients, the one-step-ahead
// residual feeds a z-score and a one-sided CUSUM detector, and trips are
// classified as I/O stalls or viz overload by which phase overshot its
// modeled share. Anomalous observations are excluded from the fit
// (anomaly gating), so a Lustre stall shows up as an event rather than
// silently biasing α. An optional energy budget adds a third anomaly
// kind when the integrated burn crosses it.
package livemodel

import (
	"math"
	"sync"

	"insituviz/internal/telemetry"
)

// Observation is one per-sample measurement fed to the estimator: the
// regressors of the paper's model plus the phase split used to classify
// anomalies and the energy burned over the sample window.
type Observation struct {
	SIoGB   float64 // S_io: data moved to/from storage, GB
	NViz    float64 // N_viz: image sets produced
	T       float64 // t: total observed seconds for the sample window
	TIo     float64 // observed I/O share of T, seconds (anomaly classification)
	TViz    float64 // observed viz share of T, seconds (anomaly classification)
	EnergyJ float64 // energy burned over the window, joules
	TS      float64 // trace timestamp of the observation, seconds (export only)
}

// Anomaly kinds, in the order anomaly counters report them.
const (
	KindIO     = "io"     // I/O stall: I/O phase overshot α·S_io
	KindViz    = "viz"    // viz overload: viz phase overshot β·N_viz
	KindBudget = "budget" // energy burn crossed the configured budget
)

// Anomaly is one detector trip. Seq is the 1-based observation index, so
// same-seed runs log identical sequences.
type Anomaly struct {
	Seq       int     `json:"seq"`
	Kind      string  `json:"kind"`
	Z         float64 `json:"z"`
	Residual  float64 `json:"residual_s"`
	Predicted float64 `json:"predicted_s"`
	Actual    float64 `json:"actual_s"`
}

// Config parameterizes an Estimator. The zero value, passed through
// defaults, is a reasonable live configuration; tests that want exact
// batch-least-squares equivalence set Window: 0 and Damping: 0.
type Config struct {
	// Window is the sliding-window size in observations; 0 fits over the
	// whole run (unbounded).
	Window int
	// Damping is the relative ridge applied to each diagonal entry of
	// X'X (a[i][i] *= 1+Damping). Within a single run N_viz is often
	// constant, which makes the intercept and N_viz columns collinear; a
	// tiny relative ridge keeps the solve determined without visibly
	// biasing α. 0 disables damping, for exact least-squares equivalence.
	Damping float64
	// Warmup is the number of accepted observations before anomaly
	// detection arms (the first few residuals calibrate σ). Default 4.
	Warmup int
	// ZThreshold trips the z-score detector. Default 6.
	ZThreshold float64
	// HardZ trips (and gates) even before Warmup arms the calibrated
	// detectors: an egregious outlier against the MinSigma floor — an
	// injected multi-second stall landing in the first few samples —
	// must not enter the residual statistics it would later be judged
	// by. Default 1000.
	HardZ float64
	// CUSUMDrift is the slack k subtracted per step from the one-sided
	// CUSUM sum. Default 0.5.
	CUSUMDrift float64
	// CUSUMThreshold is the CUSUM trip level h. Default 8.
	CUSUMThreshold float64
	// MinSigma floors the residual σ used for z-scores, so a perfectly
	// converged fit (σ→0) does not flag femtosecond jitter. Seconds;
	// default 1e-3.
	MinSigma float64
	// MaxConsecutiveGated bounds the gating death-spiral on a genuine
	// regime change (post-processing's dump loop handing over to its viz
	// loop shifts every observation at once): after this many consecutive
	// gated observations the detector concedes, resets the window and
	// residual statistics, and refits from the new regime. Default 8.
	MaxConsecutiveGated int
	// EnergyBudgetJ, when positive, arms the budget detector: the first
	// observation that pushes cumulative energy past it logs a budget
	// anomaly. Joules.
	EnergyBudgetJ float64
	// MaxAnomalies caps the retained event log. Default 256.
	MaxAnomalies int
}

func (c Config) withDefaults() Config {
	if c.Warmup <= 0 {
		c.Warmup = 4
	}
	if c.ZThreshold <= 0 {
		c.ZThreshold = 6
	}
	if c.HardZ <= 0 {
		c.HardZ = 1000
	}
	if c.CUSUMDrift <= 0 {
		c.CUSUMDrift = 0.5
	}
	if c.CUSUMThreshold <= 0 {
		c.CUSUMThreshold = 8
	}
	if c.MinSigma <= 0 {
		c.MinSigma = 1e-3
	}
	if c.MaxConsecutiveGated <= 0 {
		c.MaxConsecutiveGated = 8
	}
	if c.MaxAnomalies <= 0 {
		c.MaxAnomalies = 256
	}
	return c
}

// record is one ring entry: the observation plus what the estimator knew
// when it arrived.
type record struct {
	obs       Observation
	predicted float64
	residual  float64
	gated     bool // excluded from the fit (anomalous)
	hadPred   bool // a prediction existed when the observation arrived
}

// Estimator is the online fit. Safe for one writer (Observe) and any
// number of concurrent readers (Snapshot, Handler); all state is guarded
// by one mutex. A nil *Estimator ignores observations, so call sites can
// wire it unconditionally, like a nil telemetry handle.
type Estimator struct {
	cfg Config

	mu    sync.Mutex
	ring  []record
	head  int // next slot to overwrite when the window is full
	count int // live records in ring
	total int // observations ever seen

	// Normal equations over the non-gated window: X'X (symmetric,
	// packed upper triangle) and X'y for the design (1, S_io, N_viz).
	sxx      [6]float64
	sxy      [3]float64
	included int

	coef   [3]float64 // (t_sim, α, β)
	coefOK bool

	// One-step-ahead residual statistics over accepted observations
	// (Welford), feeding the z-score, plus the one-sided CUSUM sum.
	resCount int
	resMean  float64
	resM2    float64
	cusum    float64

	consecGated  int
	regimeResets int

	energyJ       float64
	totalT        float64
	budgetTripped bool

	anomalies []Anomaly
	nIO       int
	nViz      int
	nBudget   int

	// Telemetry handles; nil until SetTelemetry, nil-safe throughout.
	mObs      *telemetry.Counter
	mAnomIO   *telemetry.Counter
	mAnomViz  *telemetry.Counter
	mAnomBud  *telemetry.Counter
	mAlpha    *telemetry.FloatGauge
	mBeta     *telemetry.FloatGauge
	mTSim     *telemetry.FloatGauge
	mBurn     *telemetry.FloatGauge
	mEnergy   *telemetry.FloatGauge
	mResidual *telemetry.Histogram

	onAnomaly func(Anomaly)
}

// New returns an estimator for cfg (see Config for defaults).
func New(cfg Config) *Estimator {
	cfg = cfg.withDefaults()
	e := &Estimator{cfg: cfg}
	if cfg.Window > 0 {
		e.ring = make([]record, cfg.Window)
	}
	return e
}

// SetTelemetry registers the model.* metrics on reg and publishes into
// them from every Observe. Call before feeding observations; a nil
// registry (or estimator) is a no-op.
func (e *Estimator) SetTelemetry(reg *telemetry.Registry) {
	if e == nil || reg == nil {
		return
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	e.mObs = reg.Counter("model.observations")
	e.mAnomIO = reg.Counter("model.anomalies.io")
	e.mAnomViz = reg.Counter("model.anomalies.viz")
	e.mAnomBud = reg.Counter("model.anomalies.budget")
	e.mAlpha = reg.FloatGauge("model.alpha_s_per_gb")
	e.mBeta = reg.FloatGauge("model.beta_s_per_set")
	e.mTSim = reg.FloatGauge("model.tsim_s")
	e.mBurn = reg.FloatGauge("model.burn_rate_w")
	e.mEnergy = reg.FloatGauge("model.energy_j")
	e.mResidual = reg.Histogram("model.residual_abs_s", []float64{
		1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 0.1, 0.5, 1, 2, 5, 10, 60,
	})
}

// OnAnomaly registers fn to be called (outside the estimator lock, from
// the Observe caller's goroutine) for every detector trip — the hook
// live.go uses to emit trace Instant events.
func (e *Estimator) OnAnomaly(fn func(Anomaly)) {
	if e == nil {
		return
	}
	e.mu.Lock()
	e.onAnomaly = fn
	e.mu.Unlock()
}

// Observe feeds one sample. The hot path performs no heap allocation in
// steady state: ring slots are preallocated (windowed) or grown
// amortized (unbounded), the solve runs on fixed-size stack arrays, and
// telemetry updates are atomic stores.
func (e *Estimator) Observe(o Observation) {
	if e == nil {
		return
	}
	e.mu.Lock()
	e.total++
	e.energyJ += o.EnergyJ
	e.totalT += o.T

	rec := record{obs: o}
	if e.coefOK {
		rec.hadPred = true
		rec.predicted = e.coef[0] + e.coef[1]*o.SIoGB + e.coef[2]*o.NViz
		rec.residual = o.T - rec.predicted
	} else {
		rec.predicted = o.T
	}

	var fired [2]Anomaly // at most residual trip + budget trip per observation
	nFired := 0

	// Residual detectors. The calibrated z/CUSUM pair arms once Warmup
	// accepted observations exist; before that a hard-z fast path
	// (egregious outliers against the MinSigma floor) still flags and
	// gates, so a stall landing during warmup cannot poison the very
	// statistics that would later detect it.
	if rec.hadPred {
		armed := e.resCount >= e.cfg.Warmup
		sigma := e.cfg.MinSigma
		if armed && e.resCount > 1 {
			if s := math.Sqrt(e.resM2 / float64(e.resCount-1)); s > sigma {
				sigma = s
			}
		}
		z := (rec.residual - e.resMean) / sigma
		trip := false
		if armed {
			e.cusum += z - e.cfg.CUSUMDrift
			if e.cusum < 0 {
				e.cusum = 0
			}
			trip = math.Abs(z) > e.cfg.ZThreshold || e.cusum > e.cfg.CUSUMThreshold
		} else {
			trip = math.Abs(z) > e.cfg.HardZ
		}
		if trip {
			e.cusum = 0
			rec.gated = true
			kind := KindViz
			// Classify by which phase overshot its modeled share.
			excessIO := o.TIo - e.coef[1]*o.SIoGB
			excessViz := o.TViz - e.coef[2]*o.NViz
			if excessIO >= excessViz {
				kind = KindIO
			}
			fired[nFired] = Anomaly{
				Seq: e.total, Kind: kind, Z: z,
				Residual: rec.residual, Predicted: rec.predicted, Actual: o.T,
			}
			nFired++
			e.consecGated++
			if e.consecGated >= e.cfg.MaxConsecutiveGated {
				// Regime change: this many consecutive trips is not a
				// burst of stalls, it is a new steady state the old fit
				// cannot describe. Concede — drop the window and the
				// residual calibration and start learning the new
				// regime, beginning with this observation (its residual
				// is against the dead regime, so it does not seed the
				// fresh statistics).
				e.resetRegime()
				rec.gated = false
				rec.hadPred = false
			}
		} else {
			e.consecGated = 0
		}
	}

	// Budget detector: trips once, at the crossing.
	if e.cfg.EnergyBudgetJ > 0 && !e.budgetTripped && e.energyJ > e.cfg.EnergyBudgetJ {
		e.budgetTripped = true
		fired[nFired] = Anomaly{
			Seq: e.total, Kind: KindBudget, Z: 0,
			Residual: rec.residual, Predicted: rec.predicted, Actual: o.T,
		}
		nFired++
	}

	// Window expiry before insert.
	if e.cfg.Window > 0 && e.count == e.cfg.Window {
		old := &e.ring[e.head]
		if !old.gated {
			e.downdate(old.obs)
		}
		e.count--
	}
	// Insert.
	if e.cfg.Window > 0 {
		e.ring[e.head] = rec
		e.head = (e.head + 1) % e.cfg.Window
		e.count++
	} else {
		e.ring = append(e.ring, rec)
		e.count++
	}

	if !rec.gated {
		e.update(o)
		if rec.hadPred {
			// Welford over accepted residuals.
			e.resCount++
			d := rec.residual - e.resMean
			e.resMean += d / float64(e.resCount)
			e.resM2 += d * (rec.residual - e.resMean)
		}
		e.refit()
	}

	// Anomaly bookkeeping.
	for i := 0; i < nFired; i++ {
		a := fired[i]
		if len(e.anomalies) < e.cfg.MaxAnomalies {
			e.anomalies = append(e.anomalies, a)
		}
		switch a.Kind {
		case KindIO:
			e.nIO++
			e.mAnomIO.Inc()
		case KindViz:
			e.nViz++
			e.mAnomViz.Inc()
		case KindBudget:
			e.nBudget++
			e.mAnomBud.Inc()
		}
	}

	// Telemetry (atomic stores; all nil-safe).
	e.mObs.Inc()
	if e.coefOK {
		e.mTSim.Set(e.coef[0])
		e.mAlpha.Set(e.coef[1])
		e.mBeta.Set(e.coef[2])
	}
	e.mEnergy.Set(e.energyJ)
	if e.totalT > 0 {
		e.mBurn.Set(e.energyJ / e.totalT)
	}
	if rec.hadPred {
		e.mResidual.Observe(math.Abs(rec.residual))
	}
	cb := e.onAnomaly
	e.mu.Unlock()

	if cb != nil {
		for i := 0; i < nFired; i++ {
			cb(fired[i])
		}
	}
}

// resetRegime discards the fit window, coefficients, and residual
// statistics after a conceded regime change. Cumulative quantities
// (total, energy, anomaly log, counters) survive; the retained
// predicted-vs-actual series restarts from the new regime.
func (e *Estimator) resetRegime() {
	e.sxx = [6]float64{}
	e.sxy = [3]float64{}
	e.included = 0
	e.coef = [3]float64{}
	e.coefOK = false
	e.resCount, e.resMean, e.resM2, e.cusum = 0, 0, 0, 0
	e.consecGated = 0
	e.head, e.count = 0, 0
	if e.cfg.Window == 0 {
		e.ring = e.ring[:0]
	}
	e.regimeResets++
}

// update adds one observation's rank-one contribution to the normal
// equations.
func (e *Estimator) update(o Observation) {
	s, n, t := o.SIoGB, o.NViz, o.T
	e.sxx[0] += 1
	e.sxx[1] += s
	e.sxx[2] += n
	e.sxx[3] += s * s
	e.sxx[4] += s * n
	e.sxx[5] += n * n
	e.sxy[0] += t
	e.sxy[1] += s * t
	e.sxy[2] += n * t
	e.included++
}

// downdate removes an expired observation's contribution.
func (e *Estimator) downdate(o Observation) {
	s, n, t := o.SIoGB, o.NViz, o.T
	e.sxx[0] -= 1
	e.sxx[1] -= s
	e.sxx[2] -= n
	e.sxx[3] -= s * s
	e.sxx[4] -= s * n
	e.sxx[5] -= n * n
	e.sxy[0] -= t
	e.sxy[1] -= s * t
	e.sxy[2] -= n * t
	e.included--
}

// refit re-solves the (possibly damped) normal equations. With fewer
// included observations than parameters the previous coefficients are
// kept (coefOK stays false until the first successful solve).
func (e *Estimator) refit() {
	if e.included < 3 {
		return
	}
	coef, ok := solve3(e.sxx, e.sxy, e.cfg.Damping)
	if ok {
		e.coef = coef
		e.coefOK = true
	}
}

// solve3 solves the 3x3 symmetric system packed in sxx (upper triangle:
// [00 01 02 11 12 22]) against rhs, with optional relative per-diagonal
// ridge damping, by Gaussian elimination with partial pivoting on
// fixed-size stack arrays. Reports false when the (damped) system is
// numerically singular. Deterministic: no randomness, no map iteration.
func solve3(sxx [6]float64, rhs [3]float64, damping float64) ([3]float64, bool) {
	var a [3][4]float64
	a[0][0], a[0][1], a[0][2] = sxx[0], sxx[1], sxx[2]
	a[1][0], a[1][1], a[1][2] = sxx[1], sxx[3], sxx[4]
	a[2][0], a[2][1], a[2][2] = sxx[2], sxx[4], sxx[5]
	if damping > 0 {
		for i := 0; i < 3; i++ {
			if a[i][i] != 0 {
				a[i][i] *= 1 + damping
			} else {
				a[i][i] = damping
			}
		}
	}
	a[0][3], a[1][3], a[2][3] = rhs[0], rhs[1], rhs[2]

	// Row scale for the singularity test, so the threshold is relative
	// to the problem's magnitude.
	var scale float64
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			if v := math.Abs(a[i][j]); v > scale {
				scale = v
			}
		}
	}
	if scale == 0 {
		return [3]float64{}, false
	}
	tiny := scale * 1e-14

	for col := 0; col < 3; col++ {
		// Partial pivot.
		pivot := col
		for r := col + 1; r < 3; r++ {
			if math.Abs(a[r][col]) > math.Abs(a[pivot][col]) {
				pivot = r
			}
		}
		if math.Abs(a[pivot][col]) <= tiny {
			return [3]float64{}, false
		}
		if pivot != col {
			a[pivot], a[col] = a[col], a[pivot]
		}
		inv := 1 / a[col][col]
		for r := col + 1; r < 3; r++ {
			f := a[r][col] * inv
			if f == 0 {
				continue
			}
			for j := col; j < 4; j++ {
				a[r][j] -= f * a[col][j]
			}
		}
	}
	var x [3]float64
	for i := 2; i >= 0; i-- {
		v := a[i][3]
		for j := i + 1; j < 3; j++ {
			v -= a[i][j] * x[j]
		}
		x[i] = v / a[i][i]
	}
	return x, true
}

// Coefficients returns the current (t_sim, α, β) and whether a solve has
// succeeded yet.
func (e *Estimator) Coefficients() (tsim, alpha, beta float64, ok bool) {
	if e == nil {
		return 0, 0, 0, false
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.coef[0], e.coef[1], e.coef[2], e.coefOK
}

package livemodel

import (
	"bytes"
	"math"
	"net/http/httptest"
	"strings"
	"testing"

	"insituviz/internal/linalg"
	"insituviz/internal/telemetry"
)

// synthObs builds a deterministic full-rank observation stream around the
// reference model: varying S_io and N_viz so all three columns carry
// independent information, constant t_sim so the intercept captures it
// exactly and the stream is noise-free.
func synthObs(n int) []Observation {
	ref := NodeCostModel()
	out := make([]Observation, n)
	for i := range out {
		s := 0.5 + 0.25*float64(i%7) // GB
		v := float64(1 + i%3)        // image sets
		out[i] = ref.Observation(10, s, v, 0, 0)
	}
	return out
}

func feed(e *Estimator, obs []Observation) {
	for _, o := range obs {
		e.Observe(o)
	}
}

// TestEquivalenceWithBatchLeastSquares is the package-level half of the
// equivalence satellite: an unbounded, undamped online fit must
// reproduce the batch QR least-squares solution (the machinery behind
// cmd/modelfit) to 1e-9.
func TestEquivalenceWithBatchLeastSquares(t *testing.T) {
	obs := synthObs(40)
	e := New(Config{Window: 0, Damping: 0})
	feed(e, obs)

	a := linalg.NewMatrix(len(obs), 3)
	rhs := make([]float64, len(obs))
	for i, o := range obs {
		a.Set(i, 0, 1)
		a.Set(i, 1, o.SIoGB)
		a.Set(i, 2, o.NViz)
		rhs[i] = o.T
	}
	want, err := linalg.LeastSquares(a, rhs)
	if err != nil {
		t.Fatalf("batch least squares: %v", err)
	}
	tsim, alpha, beta, ok := e.Coefficients()
	if !ok {
		t.Fatal("online fit did not converge")
	}
	got := []float64{tsim, alpha, beta}
	for j := range want {
		if d := math.Abs(got[j] - want[j]); d > 1e-9*math.Max(1, math.Abs(want[j])) {
			t.Errorf("coefficient %d: online %g, batch %g (|Δ|=%g)", j, got[j], want[j], d)
		}
	}
	// And both must recover the generating model exactly (the stream is
	// noise-free).
	ref := NodeCostModel()
	if math.Abs(alpha-ref.AlphaSPerGB) > 1e-9 || math.Abs(beta-ref.BetaSPerSet) > 1e-9 {
		t.Errorf("fit (α=%g, β=%g) does not recover reference (α=%g, β=%g)",
			alpha, beta, ref.AlphaSPerGB, ref.BetaSPerSet)
	}
}

// TestWindowedFitMatchesBatchOverWindow checks the sliding window: after
// expiry, the online coefficients equal a batch fit over exactly the
// last Window observations.
func TestWindowedFitMatchesBatchOverWindow(t *testing.T) {
	const window = 16
	obs := synthObs(50)
	e := New(Config{Window: window, Damping: 0})
	feed(e, obs)

	tail := obs[len(obs)-window:]
	a := linalg.NewMatrix(len(tail), 3)
	rhs := make([]float64, len(tail))
	for i, o := range tail {
		a.Set(i, 0, 1)
		a.Set(i, 1, o.SIoGB)
		a.Set(i, 2, o.NViz)
		rhs[i] = o.T
	}
	want, err := linalg.LeastSquares(a, rhs)
	if err != nil {
		t.Fatalf("batch least squares: %v", err)
	}
	tsim, alpha, beta, ok := e.Coefficients()
	if !ok {
		t.Fatal("online fit did not converge")
	}
	got := []float64{tsim, alpha, beta}
	for j := range want {
		if d := math.Abs(got[j] - want[j]); d > 1e-8*math.Max(1, math.Abs(want[j])) {
			t.Errorf("coefficient %d: windowed online %g, batch-over-window %g (|Δ|=%g)", j, got[j], want[j], d)
		}
	}
	if snap := e.Snapshot(); snap.Included != window {
		t.Errorf("Included = %d, want %d", snap.Included, window)
	}
}

// TestDeterminism: identical streams render byte-identical JSON and
// anomaly logs — the /model byte-stability contract.
func TestDeterminism(t *testing.T) {
	run := func() (string, string) {
		e := New(Config{Window: 8, Damping: 1e-9})
		obs := synthObs(30)
		obs[20].T += 50 // one fat residual → anomaly event
		obs[20].TIo += 50
		feed(e, obs)
		var j, l bytes.Buffer
		snap := e.Snapshot()
		if err := snap.WriteJSON(&j); err != nil {
			t.Fatalf("WriteJSON: %v", err)
		}
		if err := snap.WriteLog(&l); err != nil {
			t.Fatalf("WriteLog: %v", err)
		}
		return j.String(), l.String()
	}
	j1, l1 := run()
	j2, l2 := run()
	if j1 != j2 {
		t.Errorf("JSON not byte-stable:\n%s\nvs\n%s", j1, j2)
	}
	if l1 != l2 {
		t.Errorf("log not byte-stable:\n%s\nvs\n%s", l1, l2)
	}
	if !strings.Contains(l1, "model anomaly #21 io") {
		t.Errorf("log missing io anomaly at seq 21:\n%s", l1)
	}
}

// TestAnomalyClassificationAndGating: an I/O stall is flagged "io", a
// viz overshoot "viz", and neither biases the coefficients.
func TestAnomalyClassificationAndGating(t *testing.T) {
	ref := NodeCostModel()
	e := New(Config{Window: 0, Damping: 0})
	obs := synthObs(20)
	feed(e, obs)

	stalled := ref.Observation(10, 1.0, 2, 30 /* io stall */, 0)
	e.Observe(stalled)
	over := ref.Observation(10, 1.0, 2, 0, 25 /* viz overload */)
	e.Observe(over)

	snap := e.Snapshot()
	if snap.AnomalyCounts.IO != 1 || snap.AnomalyCounts.Viz != 1 {
		t.Fatalf("anomaly counts = %+v, want io=1 viz=1", snap.AnomalyCounts)
	}
	if snap.Anomalies[0].Kind != KindIO || snap.Anomalies[0].Seq != 21 {
		t.Errorf("first anomaly = %+v, want io at seq 21", snap.Anomalies[0])
	}
	if snap.Anomalies[1].Kind != KindViz || snap.Anomalies[1].Seq != 22 {
		t.Errorf("second anomaly = %+v, want viz at seq 22", snap.Anomalies[1])
	}
	// Gating: the two anomalous observations are excluded, so the fit
	// still matches the generating model exactly.
	if math.Abs(snap.Alpha-ref.AlphaSPerGB) > 1e-9 || math.Abs(snap.Beta-ref.BetaSPerSet) > 1e-9 {
		t.Errorf("anomalies biased the fit: α=%g β=%g", snap.Alpha, snap.Beta)
	}
	if snap.Included != 20 {
		t.Errorf("Included = %d, want 20 (anomalies gated)", snap.Included)
	}
}

// TestBudgetTripsOnce: crossing the energy budget logs exactly one
// budget anomaly, at the crossing observation.
func TestBudgetTripsOnce(t *testing.T) {
	ref := NodeCostModel()
	perObs := ref.Energy(ref.Time(10, 1, 1))
	e := New(Config{Window: 0, EnergyBudgetJ: 2.5 * perObs})
	for i := 0; i < 6; i++ {
		e.Observe(ref.Observation(10, 1, 1, 0, 0))
	}
	snap := e.Snapshot()
	if snap.AnomalyCounts.Budget != 1 {
		t.Fatalf("budget anomalies = %d, want 1", snap.AnomalyCounts.Budget)
	}
	if snap.Anomalies[0].Seq != 3 || snap.Anomalies[0].Kind != KindBudget {
		t.Errorf("budget anomaly = %+v, want seq 3", snap.Anomalies[0])
	}
	if snap.BudgetJ != 2.5*perObs {
		t.Errorf("BudgetJ = %g, want %g", snap.BudgetJ, 2.5*perObs)
	}
}

// TestDampedSolveSurvivesCollinearity: constant N_viz makes the
// intercept and N_viz columns proportional — plain LS is singular, the
// damped solve stays determined and still recovers α.
func TestDampedSolveSurvivesCollinearity(t *testing.T) {
	ref := NodeCostModel()
	plain := New(Config{Window: 0, Damping: 0})
	damped := New(Config{Window: 0, Damping: 1e-9})
	for i := 0; i < 12; i++ {
		o := ref.Observation(10, 0.5+0.25*float64(i%5), 3, 0, 0)
		plain.Observe(o)
		damped.Observe(o)
	}
	if _, _, _, ok := plain.Coefficients(); ok {
		t.Error("undamped solve claimed success on a singular system")
	}
	_, alpha, _, ok := damped.Coefficients()
	if !ok {
		t.Fatal("damped solve failed on collinear data")
	}
	if math.Abs(alpha-ref.AlphaSPerGB) > 1e-6 {
		t.Errorf("damped α = %g, want ≈ %g", alpha, ref.AlphaSPerGB)
	}
}

// TestConfidenceIntervalContainsReference: on a noise-free stream the
// interval collapses but Contains still accepts the generating α.
func TestConfidenceIntervalContainsReference(t *testing.T) {
	e := New(Config{Window: 0, Damping: 0})
	feed(e, synthObs(25))
	snap := e.Snapshot()
	ref := NodeCostModel()
	if !Contains(snap.Alpha, snap.AlphaCI, ref.AlphaSPerGB) {
		t.Errorf("α=%g ±%g does not contain reference %g", snap.Alpha, snap.AlphaCI, ref.AlphaSPerGB)
	}
	if Contains(snap.Alpha, snap.AlphaCI, ref.AlphaSPerGB*2) {
		t.Error("Contains accepted a wildly wrong reference")
	}
}

// TestTelemetryWiring: model.* metrics land in the registry and the
// float gauges carry the fitted coefficients.
func TestTelemetryWiring(t *testing.T) {
	reg := telemetry.NewRegistry()
	e := New(Config{Window: 0, Damping: 0})
	e.SetTelemetry(reg)
	obs := synthObs(20)
	obs[15].T += 40
	obs[15].TIo += 40
	feed(e, obs)

	snap := reg.Snapshot()
	if got := snap.Counters["model.observations"]; got != 20 {
		t.Errorf("model.observations = %d, want 20", got)
	}
	if got := snap.Counters["model.anomalies.io"]; got != 1 {
		t.Errorf("model.anomalies.io = %d, want 1", got)
	}
	ref := NodeCostModel()
	if got := snap.FloatGauges["model.alpha_s_per_gb"]; math.Abs(got-ref.AlphaSPerGB) > 1e-9 {
		t.Errorf("model.alpha_s_per_gb = %g, want %g", got, ref.AlphaSPerGB)
	}
	if snap.Histograms["model.residual_abs_s"].Count == 0 {
		t.Error("model.residual_abs_s never observed")
	}
	var text bytes.Buffer
	if err := snap.WriteText(&text); err != nil {
		t.Fatalf("WriteText: %v", err)
	}
	if !strings.Contains(text.String(), "fgauge model.alpha_s_per_gb ") {
		t.Errorf("text exposition missing fgauge line:\n%s", text.String())
	}
}

// TestOnAnomalyHook: the callback fires outside the lock with the event.
func TestOnAnomalyHook(t *testing.T) {
	e := New(Config{Window: 0, Damping: 0})
	var seen []Anomaly
	e.OnAnomaly(func(a Anomaly) {
		// Re-entering the estimator must not deadlock.
		_ = e.Snapshot()
		seen = append(seen, a)
	})
	obs := synthObs(20)
	obs[12].T += 40
	obs[12].TViz += 40
	feed(e, obs)
	if len(seen) != 1 || seen[0].Kind != KindViz || seen[0].Seq != 13 {
		t.Fatalf("hook saw %+v, want one viz anomaly at seq 13", seen)
	}
}

// TestHandler: /model serves the snapshot JSON, byte-identical to
// WriteJSON.
func TestHandler(t *testing.T) {
	e := New(Config{Window: 0, Damping: 0})
	feed(e, synthObs(10))
	rec := httptest.NewRecorder()
	e.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/model", nil))
	if rec.Code != 200 {
		t.Fatalf("status %d", rec.Code)
	}
	var want bytes.Buffer
	if err := e.Snapshot().WriteJSON(&want); err != nil {
		t.Fatal(err)
	}
	if rec.Body.String() != want.String() {
		t.Errorf("handler body differs from WriteJSON")
	}
	if !strings.Contains(rec.Body.String(), "\"alpha_s_per_gb\"") {
		t.Errorf("body missing alpha field:\n%s", rec.Body.String())
	}
}

// TestNilEstimator: every entry point is a no-op on nil, like nil
// telemetry handles.
func TestNilEstimator(t *testing.T) {
	var e *Estimator
	e.Observe(Observation{T: 1})
	e.SetTelemetry(telemetry.NewRegistry())
	e.OnAnomaly(func(Anomaly) {})
	if _, _, _, ok := e.Coefficients(); ok {
		t.Error("nil estimator claims convergence")
	}
	if s := e.Snapshot(); s.Observations != 0 {
		t.Error("nil estimator has observations")
	}
	if e.Series() != nil {
		t.Error("nil estimator has a series")
	}
	rec := httptest.NewRecorder()
	e.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/model", nil))
	if rec.Code != 404 {
		t.Errorf("nil handler status %d, want 404", rec.Code)
	}
}

// TestObserveAllocs pins the hot-path budget: ≤ 1 alloc per observation
// on a windowed estimator in steady state (it is 0 — the ring is
// preallocated and the solve runs on stack arrays).
func TestObserveAllocs(t *testing.T) {
	reg := telemetry.NewRegistry()
	e := New(Config{Window: 64, Damping: 1e-9})
	e.SetTelemetry(reg)
	feed(e, synthObs(128)) // fill the ring, converge the fit
	obs := synthObs(8)
	i := 0
	avg := testing.AllocsPerRun(200, func() {
		e.Observe(obs[i%len(obs)])
		i++
	})
	if avg > 1 {
		t.Errorf("Observe allocates %.2f/op, budget is ≤ 1", avg)
	}
}

// TestSeries: predicted-vs-actual pairs come back oldest-first with the
// caller's timestamps.
func TestSeries(t *testing.T) {
	e := New(Config{Window: 4, Damping: 1e-9})
	obs := synthObs(10)
	for i := range obs {
		obs[i].TS = float64(i)
		e.Observe(obs[i])
	}
	series := e.Series()
	if len(series) != 4 {
		t.Fatalf("series length %d, want window 4", len(series))
	}
	for i, pt := range series {
		if pt.TS != float64(6+i) {
			t.Errorf("series[%d].TS = %g, want %g", i, pt.TS, float64(6+i))
		}
		if pt.Actual != obs[6+i].T {
			t.Errorf("series[%d].Actual = %g, want %g", i, pt.Actual, obs[6+i].T)
		}
	}
}

func TestSolve3Singular(t *testing.T) {
	if _, ok := solve3([6]float64{}, [3]float64{}, 0); ok {
		t.Error("solve3 claimed success on the zero matrix")
	}
	// Rank-2: third row a multiple of the first.
	xtx := [6]float64{4, 2, 8, 2, 4, 16}
	if _, ok := solve3(xtx, [3]float64{1, 1, 2}, 0); ok {
		t.Error("solve3 claimed success on a rank-deficient matrix")
	}
	if _, ok := solve3(xtx, [3]float64{1, 1, 2}, 1e-9); !ok {
		t.Error("damped solve3 failed on a rank-deficient matrix")
	}
}

// BenchmarkLiveModelObserve is the benchsnap-tracked hot path: one
// observation through the windowed estimator, telemetry attached.
func BenchmarkLiveModelObserve(b *testing.B) {
	reg := telemetry.NewRegistry()
	e := New(Config{Window: 256, Damping: 1e-9})
	e.SetTelemetry(reg)
	obs := synthObs(256)
	feed(e, obs)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Observe(obs[i%len(obs)])
	}
}

// TestHardZGatesDuringWarmup: a multi-second stall landing before
// Warmup arms the calibrated detectors must still be flagged and gated
// — otherwise it enters the residual statistics and desensitizes every
// later detection. Observation 5 here carries a 30 s stall while
// resCount is still below the default Warmup of 4.
func TestHardZGatesDuringWarmup(t *testing.T) {
	ref := NodeCostModel()
	e := New(Config{Window: 0, Damping: 0})
	obs := synthObs(4)
	feed(e, obs)

	stalled := ref.Observation(10, 1.0, 2, 30 /* io stall */, 0)
	e.Observe(stalled)
	feed(e, synthObs(8))

	snap := e.Snapshot()
	if snap.AnomalyCounts.IO != 1 {
		t.Fatalf("io anomalies = %d, want 1 (hard-z during warmup)", snap.AnomalyCounts.IO)
	}
	if len(snap.Anomalies) != 1 || snap.Anomalies[0].Seq != 5 {
		t.Fatalf("anomaly log = %+v, want one io event at seq 5", snap.Anomalies)
	}
	// Gating kept the fit clean: the coefficients still match the
	// generating model exactly.
	if math.Abs(snap.Alpha-ref.AlphaSPerGB) > 1e-6 || math.Abs(snap.Beta-ref.BetaSPerSet) > 1e-6 {
		t.Errorf("fit contaminated: alpha=%g beta=%g, want %g, %g",
			snap.Alpha, snap.Beta, ref.AlphaSPerGB, ref.BetaSPerSet)
	}
}

// TestRegimeChangeConcession: a persistent shift in the observation
// stream (post-processing's dump loop handing over to its viz loop)
// must not gate every observation forever. After MaxConsecutiveGated
// trips the estimator resets and refits in the new regime.
func TestRegimeChangeConcession(t *testing.T) {
	ref := NodeCostModel()
	e := New(Config{Window: 0, Damping: 0})
	feed(e, synthObs(20))

	// New regime: constant +40 s offset on every observation from here
	// on — not a burst, a new steady state.
	for i := 0; i < 20; i++ {
		o := ref.Observation(50, 0.5+0.25*float64(i%7), float64(1+i%3), 0, 0)
		e.Observe(o)
	}

	snap := e.Snapshot()
	if snap.RegimeResets != 1 {
		t.Fatalf("regime resets = %d, want 1", snap.RegimeResets)
	}
	if got := snap.AnomalyCounts.IO + snap.AnomalyCounts.Viz; got != 8 {
		t.Errorf("anomalies before concession = %d, want MaxConsecutiveGated (8)", got)
	}
	// The refit recovered the new regime's coefficients exactly.
	if !snap.Converged || math.Abs(snap.TSim-50) > 1e-6 ||
		math.Abs(snap.Alpha-ref.AlphaSPerGB) > 1e-6 || math.Abs(snap.Beta-ref.BetaSPerSet) > 1e-6 {
		t.Errorf("post-regime fit tsim=%g alpha=%g beta=%g, want 50, %g, %g",
			snap.TSim, snap.Alpha, snap.Beta, ref.AlphaSPerGB, ref.BetaSPerSet)
	}
	// And the detector re-armed cleanly: no trailing anomaly spam.
	if len(snap.Anomalies) != 8 {
		t.Errorf("anomaly log has %d events, want exactly the 8 pre-concession trips", len(snap.Anomalies))
	}
}

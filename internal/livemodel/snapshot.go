package livemodel

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strconv"
)

// AnomalyCounts totals detector trips per kind over the whole run
// (retention in the event log is capped; these are not).
type AnomalyCounts struct {
	IO     int `json:"io"`
	Viz    int `json:"viz"`
	Budget int `json:"budget"`
}

// Snapshot is a point-in-time copy of the estimator state, the unit of
// exposition for /model and the exit-time convergence table. Rendering
// is byte-stable: fixed field order, shortest-round-trip floats, no
// wall-clock content — two same-seed runs serialize identically.
type Snapshot struct {
	Observations int `json:"observations"`
	Included     int `json:"included"` // non-gated observations in the fit window
	Window       int `json:"window"`   // 0 = unbounded

	Converged bool `json:"converged"` // a solve has succeeded
	// Identifiable reports whether the *undamped* normal equations are
	// solvable, i.e. the window genuinely constrains all three
	// coefficients. A run whose samples all move the same S_io and
	// N_viz only determines a damped combination of them — the damped
	// solve still converges, but the split between t_sim, α, and β is
	// the regularizer's choice, so the CIs are left 0 and verdicts
	// against reference coefficients should read "indeterminate".
	Identifiable bool    `json:"identifiable"`
	TSim         float64 `json:"tsim_s"`
	Alpha        float64 `json:"alpha_s_per_gb"`
	Beta         float64 `json:"beta_s_per_set"`

	// 95% confidence half-widths from the windowed fit (0 until enough
	// degrees of freedom exist and the fit is identifiable).
	TSimCI  float64 `json:"tsim_ci_s"`
	AlphaCI float64 `json:"alpha_ci_s_per_gb"`
	BetaCI  float64 `json:"beta_ci_s_per_set"`

	// One-step-ahead residual quantiles over the retained window,
	// seconds.
	ResidualP50 float64 `json:"residual_p50_s"`
	ResidualP90 float64 `json:"residual_p90_s"`
	ResidualP99 float64 `json:"residual_p99_s"`

	EnergyJ   float64 `json:"energy_j"`
	BudgetJ   float64 `json:"budget_j"`
	BurnRateW float64 `json:"burn_rate_w"`

	AnomalyCounts AnomalyCounts `json:"anomaly_counts"`
	// RegimeResets counts conceded regime changes (see
	// Config.MaxConsecutiveGated).
	RegimeResets int       `json:"regime_resets"`
	Anomalies    []Anomaly `json:"anomalies"`
}

// Snapshot copies the current state. Safe under concurrent Observe; a
// nil estimator returns an empty snapshot.
func (e *Estimator) Snapshot() *Snapshot {
	s := &Snapshot{Anomalies: []Anomaly{}}
	if e == nil {
		return s
	}
	e.mu.Lock()
	defer e.mu.Unlock()

	s.Observations = e.total
	s.Included = e.included
	s.Window = e.cfg.Window
	s.Converged = e.coefOK
	s.TSim, s.Alpha, s.Beta = e.coef[0], e.coef[1], e.coef[2]
	s.EnergyJ = e.energyJ
	s.BudgetJ = e.cfg.EnergyBudgetJ
	if e.totalT > 0 {
		s.BurnRateW = e.energyJ / e.totalT
	}
	s.AnomalyCounts = AnomalyCounts{IO: e.nIO, Viz: e.nViz, Budget: e.nBudget}
	s.RegimeResets = e.regimeResets
	s.Anomalies = append(s.Anomalies, e.anomalies...)

	// Residual quantiles over retained one-step-ahead residuals.
	res := make([]float64, 0, e.count)
	e.eachRecord(func(r *record) {
		if r.hadPred {
			res = append(res, r.residual)
		}
	})
	if len(res) > 0 {
		sort.Float64s(res)
		s.ResidualP50 = quantile(res, 0.50)
		s.ResidualP90 = quantile(res, 0.90)
		s.ResidualP99 = quantile(res, 0.99)
	}

	// Confidence half-widths: 2·sqrt(s²·(X'X)⁻¹_jj) with
	// s² = RSS/(n-3) over the included window, the standard OLS
	// interval at ≈95%. Requires a solved fit, spare degrees of
	// freedom, and an *undamped* solvable system — a damped inverse of
	// a collinear window would print confidently tiny intervals around
	// the regularizer's arbitrary split. Otherwise the half-widths stay
	// 0 and Identifiable stays false.
	if e.coefOK && e.included > 3 {
		var rss float64
		e.eachRecord(func(r *record) {
			if !r.gated {
				pred := e.coef[0] + e.coef[1]*r.obs.SIoGB + e.coef[2]*r.obs.NViz
				d := r.obs.T - pred
				rss += d * d
			}
		})
		s2 := rss / float64(e.included-3)
		var ci [3]float64
		okAll := true
		for j := 0; j < 3; j++ {
			var unit [3]float64
			unit[j] = 1
			col, ok := solve3(e.sxx, unit, 0)
			if !ok || col[j] < 0 {
				okAll = false
				break
			}
			ci[j] = 2 * math.Sqrt(s2*col[j])
		}
		if okAll {
			s.Identifiable = true
			s.TSimCI, s.AlphaCI, s.BetaCI = ci[0], ci[1], ci[2]
		}
	}
	return s
}

// eachRecord visits live ring records oldest-first. Callers hold e.mu.
func (e *Estimator) eachRecord(fn func(*record)) {
	if e.cfg.Window > 0 {
		start := e.head - e.count
		if start < 0 {
			start += e.cfg.Window
		}
		for i := 0; i < e.count; i++ {
			fn(&e.ring[(start+i)%e.cfg.Window])
		}
		return
	}
	for i := range e.ring {
		fn(&e.ring[i])
	}
}

// quantile is the nearest-rank quantile of a sorted slice —
// deterministic, no interpolation ties.
func quantile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(math.Ceil(q*float64(len(sorted)))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}

// Contains reports whether ref lies within the coefficient's confidence
// interval [val-ci, val+ci], with a 1e-6 relative slack so a zero-noise
// fit (ci → 0) still matches its own generating coefficient to rounding.
func Contains(val, ci, ref float64) bool {
	slack := 1e-6 * math.Max(1, math.Abs(ref))
	return math.Abs(val-ref) <= ci+slack
}

// WriteJSON writes the snapshot as indented JSON with a trailing
// newline, the /model response body. Byte-stable for identical state.
func (s *Snapshot) WriteJSON(w io.Writer) error {
	data, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return fmt.Errorf("livemodel: marshal snapshot: %w", err)
	}
	data = append(data, '\n')
	_, err = w.Write(data)
	return err
}

// WriteLog writes the anomaly event log in a plain-text, diff-friendly
// format modeled on faults.WriteLog, closed by one fit-summary line.
// CI's model-smoke job asserts two same-seed runs produce byte-identical
// logs, which covers both the event sequence and the final coefficients.
func (s *Snapshot) WriteLog(w io.Writer) error {
	for _, a := range s.Anomalies {
		if _, err := fmt.Fprintf(w, "model anomaly #%d %s z=%s residual=%s predicted=%s actual=%s\n",
			a.Seq, a.Kind, g(a.Z), g(a.Residual), g(a.Predicted), g(a.Actual)); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintf(w, "model fit observations=%d included=%d tsim=%s alpha=%s beta=%s anomalies io=%d viz=%d budget=%d\n",
		s.Observations, s.Included, g(s.TSim), g(s.Alpha), g(s.Beta),
		s.AnomalyCounts.IO, s.AnomalyCounts.Viz, s.AnomalyCounts.Budget)
	return err
}

func g(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// Handler returns the /model HTTP endpoint: the current snapshot as
// JSON, re-read on every request under the usual scrape contract. Safe
// on a nil estimator (404).
func (e *Estimator) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if e == nil {
			http.Error(w, "no model estimator attached", http.StatusNotFound)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		if err := e.Snapshot().WriteJSON(w); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
}

// SeriesPoint is one predicted-vs-actual pair with its trace timestamp,
// the raw material of the Perfetto counter track export.
type SeriesPoint struct {
	TS        float64 // seconds, caller-supplied at Observe time
	Predicted float64
	Actual    float64
}

// Series returns the retained window's predicted-vs-actual series
// oldest-first (windowed estimators only keep the most recent Window
// points).
func (e *Estimator) Series() []SeriesPoint {
	if e == nil {
		return nil
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	out := make([]SeriesPoint, 0, e.count)
	e.eachRecord(func(r *record) {
		out = append(out, SeriesPoint{TS: r.obs.TS, Predicted: r.predicted, Actual: r.obs.T})
	})
	return out
}

package livemodel

// CostModel is a deterministic reference cost model: the paper's fitted
// coefficients (Table 3: α ≈ 6.3 s/GB, β ≈ 1.2 s per image set) over a
// flat busy-node draw matching trace.NodePowerModel (44 kW cage / 150
// nodes). LiveRun uses it to synthesize per-sample observations from
// deterministic quantities (committed bytes, frame counts, injected
// stall seconds) instead of wall-clock span times, which would break the
// byte-stability contract of /model and the anomaly log. The online
// estimator then has a known ground truth to converge to, which is what
// the convergence table's contains-reference verdict checks.
type CostModel struct {
	AlphaSPerGB float64 // α: seconds per GB moved
	BetaSPerSet float64 // β: seconds per image set rendered
	PowerW      float64 // flat draw used for E = P·t burn accounting
}

// NodeCostModel returns the per-node reference calibration.
func NodeCostModel() CostModel {
	return CostModel{
		AlphaSPerGB: 6.3,
		BetaSPerSet: 1.2,
		PowerW:      44000.0 / 150,
	}
}

// Time evaluates t = t_sim + α·S_io + β·N_viz.
func (m CostModel) Time(tsim, sIoGB, nViz float64) float64 {
	return tsim + m.AlphaSPerGB*sIoGB + m.BetaSPerSet*nViz
}

// Energy evaluates E = P·t.
func (m CostModel) Energy(t float64) float64 { return m.PowerW * t }

// Observation builds the deterministic observation for one sample:
// tsim simulated-solver seconds, sIoGB committed gigabytes, nViz image
// sets, plus ioStall/vizStall injected stall seconds which land in the
// observed time (and its phase split) but not in the modeled cost —
// exactly the excess the residual detectors exist to catch.
func (m CostModel) Observation(tsim, sIoGB, nViz, ioStall, vizStall float64) Observation {
	tIo := m.AlphaSPerGB*sIoGB + ioStall
	tViz := m.BetaSPerSet*nViz + vizStall
	t := tsim + tIo + tViz
	return Observation{
		SIoGB:   sIoGB,
		NViz:    nViz,
		T:       t,
		TIo:     tIo,
		TViz:    tViz,
		EnergyJ: m.Energy(t),
	}
}

package trace

import (
	"fmt"
	"testing"

	"insituviz/internal/workpool"
)

// manualClock returns a tracer clock ticking 10 ns per read, plus a
// pointer to the current time for assertions. Single-goroutine tests only.
func manualClock() (func() int64, *int64) {
	now := new(int64)
	return func() int64 { *now += 10; return *now }, now
}

func TestNilSafety(t *testing.T) {
	var tr *Tracer
	if tr.Now() != 0 {
		t.Error("nil tracer Now != 0")
	}
	l := tr.Lane("anything")
	if l != nil {
		t.Fatal("nil tracer returned a lane")
	}
	// Every hot-path method must no-op, not panic.
	l.Begin("x")
	l.End()
	l.Instant("x")
	l.BeginAt("x", 1)
	l.EndAt(2)
	l.InstantAt("x", 3)
	l.SpanAt("x", "d", 1, 2)
	if l.Name() != "" {
		t.Error("nil lane has a name")
	}
	tl := tr.Snapshot()
	if tl == nil || len(tl.Lanes) != 0 {
		t.Errorf("nil tracer snapshot = %+v", tl)
	}
}

func TestLaneRegistration(t *testing.T) {
	tr := New(Options{})
	a := tr.Lane("a")
	b := tr.Lane("b")
	if tr.Lane("a") != a {
		t.Error("Lane not idempotent")
	}
	if a.Name() != "a" || b.Name() != "b" {
		t.Errorf("names = %q, %q", a.Name(), b.Name())
	}
	tl := tr.Snapshot()
	if len(tl.Lanes) != 2 || tl.Lanes[0].Name != "a" || tl.Lanes[1].Name != "b" {
		t.Fatalf("lanes = %+v", tl.Lanes)
	}
	if tl.Lanes[0].ID != 0 || tl.Lanes[1].ID != 1 {
		t.Errorf("IDs = %d, %d; want registration order", tl.Lanes[0].ID, tl.Lanes[1].ID)
	}
	if tl.Lane("b") == nil || tl.Lane("zzz") != nil {
		t.Error("Timeline.Lane lookup broken")
	}
}

func TestSpanReconstruction(t *testing.T) {
	clock, _ := manualClock()
	tr := New(Options{Clock: clock})
	l := tr.Lane("driver")
	l.Begin("outer")  // ts 10
	l.Begin("inner")  // ts 20
	l.End()           // ts 30
	l.End()           // ts 40
	l.Instant("tick") // ts 50

	lt := tr.Snapshot().Lane("driver")
	if len(lt.Spans) != 2 {
		t.Fatalf("spans = %+v", lt.Spans)
	}
	// Sorted by (start, depth): outer first.
	outer, inner := lt.Spans[0], lt.Spans[1]
	if outer.Name != "outer" || outer.Depth != 0 || outer.Open {
		t.Errorf("outer = %+v", outer)
	}
	if inner.Name != "inner" || inner.Depth != 1 {
		t.Errorf("inner = %+v", inner)
	}
	if !(outer.Start < inner.Start && inner.End < outer.End) {
		t.Errorf("nesting violated: outer [%v,%v], inner [%v,%v]",
			outer.Start, outer.End, inner.Start, inner.End)
	}
	if d := float64(inner.Duration()) - 10e-9; d < -1e-15 || d > 1e-15 {
		t.Errorf("inner duration = %v", inner.Duration())
	}
	if len(lt.Instants) != 1 || lt.Instants[0].Name != "tick" {
		t.Errorf("instants = %+v", lt.Instants)
	}
	if lt.Dropped != 0 || lt.Orphans != 0 {
		t.Errorf("dropped = %d, orphans = %d", lt.Dropped, lt.Orphans)
	}
}

func TestOpenSpansClosedAtSnapshot(t *testing.T) {
	tr := New(Options{})
	l := tr.Lane("driver")
	l.BeginAt("running", 100)
	l.InstantAt("progress", 500)
	lt := tr.Snapshot().Lane("driver")
	if len(lt.Spans) != 1 {
		t.Fatalf("spans = %+v", lt.Spans)
	}
	s := lt.Spans[0]
	if !s.Open {
		t.Error("span not flagged open")
	}
	if s.End != nsToSeconds(500) {
		t.Errorf("open span closed at %v, want the lane's last ts", s.End)
	}
}

func TestOrphanEnds(t *testing.T) {
	tr := New(Options{})
	l := tr.Lane("driver")
	l.EndAt(10) // no matching begin
	l.SpanAt("ok", "", 20, 30)
	lt := tr.Snapshot().Lane("driver")
	if lt.Orphans != 1 {
		t.Errorf("orphans = %d", lt.Orphans)
	}
	if len(lt.Spans) != 1 || lt.Spans[0].Name != "ok" {
		t.Errorf("spans = %+v", lt.Spans)
	}
}

func TestRingWrapCountsDrops(t *testing.T) {
	tr := New(Options{LaneCapacity: 8})
	l := tr.Lane("driver")
	// 16 complete spans = 32 events; the ring keeps the last 8.
	for i := 0; i < 16; i++ {
		l.SpanAt("s", "", int64(i*10), int64(i*10+5))
	}
	lt := tr.Snapshot().Lane("driver")
	if lt.Dropped != 24 {
		t.Errorf("dropped = %d, want 24", lt.Dropped)
	}
	if len(lt.Spans) != 4 {
		t.Errorf("spans = %d, want the 4 that fit", len(lt.Spans))
	}
	// The survivors are the newest ones.
	if lt.Spans[0].Start != nsToSeconds(120) {
		t.Errorf("oldest surviving span starts at %v", lt.Spans[0].Start)
	}
}

func TestSpanAtDetail(t *testing.T) {
	tr := New(Options{})
	l := tr.Lane("storage")
	l.SpanAt("store.write", "raw/output_00001.nc", 10, 20)
	lt := tr.Snapshot().Lane("storage")
	if len(lt.Spans) != 1 || lt.Spans[0].Detail != "raw/output_00001.nc" {
		t.Fatalf("spans = %+v", lt.Spans)
	}
}

// TestHotPathAllocs pins the package's zero-allocation contract: with the
// lane handle already registered, Begin/End/Instant and the explicit-
// timestamp variants allocate nothing.
func TestHotPathAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates")
	}
	tr := New(Options{})
	l := tr.Lane("hot")
	if n := testing.AllocsPerRun(100, func() {
		l.Begin("span")
		l.Instant("tick")
		l.End()
		l.SpanAt("s", "", 1, 2)
	}); n != 0 {
		t.Errorf("hot path allocates %v per op", n)
	}
}

// TestWorkpoolLanes is the tracer/workpool interaction contract: helper
// goroutines executing pool chunks record through the lane handles their
// closure captured, and every span lands in the lane it was recorded on.
// Run under -race, this also exercises the per-lane locking.
func TestWorkpoolLanes(t *testing.T) {
	const n = 64
	tr := New(Options{LaneCapacity: 4 * n})
	lanes := make([]*Lane, n)
	for i := range lanes {
		lanes[i] = tr.Lane(fmt.Sprintf("rank%02d", i))
	}
	shared := tr.Lane("shared")
	workpool.Run(n, 8, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			lanes[i].Begin("work")
			shared.Instant("tick")
			lanes[i].End()
		}
	})
	tl := tr.Snapshot()
	for i := 0; i < n; i++ {
		lt := tl.Lane(fmt.Sprintf("rank%02d", i))
		if lt == nil || len(lt.Spans) != 1 {
			t.Fatalf("lane %d: %+v", i, lt)
		}
		if lt.Spans[0].Name != "work" || lt.Spans[0].Open {
			t.Errorf("lane %d span = %+v", i, lt.Spans[0])
		}
	}
	sh := tl.Lane("shared")
	if len(sh.Instants) != n {
		t.Errorf("shared instants = %d, want %d", len(sh.Instants), n)
	}
	// Instants serialized under the lane lock with in-lock timestamps:
	// ring order is timestamp order.
	for i := 1; i < len(sh.Instants); i++ {
		if sh.Instants[i].TS < sh.Instants[i-1].TS {
			t.Fatalf("instant %d out of order", i)
		}
	}
}

// TestConcurrentSnapshot checks that snapshotting during recording is safe
// (the live /trace endpoint does exactly this).
func TestConcurrentSnapshot(t *testing.T) {
	tr := New(Options{LaneCapacity: 64})
	l := tr.Lane("driver")
	done := make(chan struct{})
	go func() {
		for i := 0; i < 500; i++ {
			l.Begin("work")
			l.End()
		}
		close(done)
	}()
	for {
		tr.Snapshot()
		select {
		case <-done:
			if got := len(tr.Snapshot().Lane("driver").Spans); got == 0 {
				t.Error("no spans after writer finished")
			}
			return
		default:
		}
	}
}

package trace

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"insituviz/internal/power"
	"insituviz/internal/units"
)

func TestPhaseIntervalsInnermostWins(t *testing.T) {
	tr := New(Options{})
	l := tr.Lane("driver")
	// outer [0,100] with inner [30,60]: the inner span claims its window.
	l.BeginAt("outer", 0)
	l.BeginAt("inner", 30)
	l.EndAt(60)
	l.EndAt(100)
	// gap [100,120], then a lone span [120,150].
	l.BeginAt("tail", 120)
	l.EndAt(150)

	ivs := tr.Snapshot().Lane("driver").PhaseIntervals()
	want := []Interval{
		{"outer", nsToSeconds(0), nsToSeconds(30)},
		{"inner", nsToSeconds(30), nsToSeconds(60)},
		{"outer", nsToSeconds(60), nsToSeconds(100)},
		{"", nsToSeconds(100), nsToSeconds(120)},
		{"tail", nsToSeconds(120), nsToSeconds(150)},
	}
	if len(ivs) != len(want) {
		t.Fatalf("intervals = %+v", ivs)
	}
	for i, iv := range ivs {
		if iv != want[i] {
			t.Errorf("interval %d = %+v, want %+v", i, iv, want[i])
		}
	}
	// Contiguity: the step function has no holes or overlaps.
	for i := 1; i < len(ivs); i++ {
		if ivs[i].Start != ivs[i-1].End {
			t.Errorf("interval %d not contiguous", i)
		}
	}
}

func TestPhaseIntervalsMergesRepeats(t *testing.T) {
	tr := New(Options{})
	l := tr.Lane("driver")
	l.SpanAt("step", "", 0, 10)
	l.SpanAt("step", "", 10, 20) // back-to-back same phase: one interval
	ivs := tr.Snapshot().Lane("driver").PhaseIntervals()
	if len(ivs) != 1 || ivs[0] != (Interval{"step", 0, nsToSeconds(20)}) {
		t.Errorf("intervals = %+v", ivs)
	}
}

func TestPhaseIntervalsEmpty(t *testing.T) {
	var lt *LaneTimeline
	if lt.PhaseIntervals() != nil {
		t.Error("nil lane produced intervals")
	}
	if (&LaneTimeline{}).PhaseIntervals() != nil {
		t.Error("empty lane produced intervals")
	}
}

// synthProfile builds a profile over [0, 10s): 3 full 3-second samples
// plus a final one covering 1 of 3 seconds (LastPartial 1/3).
func synthProfile() *power.Profile {
	return &power.Profile{
		Interval:    3,
		Powers:      []units.Watts{100, 200, 300, 600},
		LastPartial: 1.0 / 3.0,
	}
}

// TestAttributeConservation is the acceptance criterion at package scope:
// per-phase energies sum to Profile.Energy() within 1e-9 relative, with
// LastPartial honored and uncovered time charged to Unattributed.
func TestAttributeConservation(t *testing.T) {
	prof := synthProfile()
	intervals := []Interval{
		{"simulate", 0, 4},
		{"io", 4, 5},
		{"simulate", 5, 8},
		// [8, 10) uncovered -> Unattributed.
	}
	att, err := Attribute("test-meter", intervals, prof)
	if err != nil {
		t.Fatal(err)
	}
	var sum float64
	for _, p := range att.Phases {
		sum += float64(p.Energy)
	}
	total := float64(prof.Energy())
	if d := math.Abs(sum-total) / total; d > 1e-9 {
		t.Errorf("phase sum %g vs profile energy %g (rel %g)", sum, total, d)
	}
	if d := math.Abs(float64(att.Total)-total) / total; d > 1e-9 {
		t.Errorf("att.Total %g vs profile energy %g", float64(att.Total), total)
	}
	if math.Abs(float64(att.Window-prof.Duration())) > 1e-9 {
		t.Errorf("window %v, profile duration %v", att.Window, prof.Duration())
	}
	// Hand-checked rows: simulate covers [0,4)+[5,8) = 3s@100 + 1s@200 +
	// 1s@200 + 2s@300 = 1300 J; io covers [4,5) = 1s@200; the final
	// sample's observed 1s ([9,10)) is uncovered.
	sim := att.Phase("simulate")
	if math.Abs(float64(sim.Energy)-1300) > 1e-9 {
		t.Errorf("simulate energy = %v", sim.Energy)
	}
	if sim.Time != 7 {
		t.Errorf("simulate time = %v", sim.Time)
	}
	io := att.Phase("io")
	if math.Abs(float64(io.Energy)-200) > 1e-9 {
		t.Errorf("io energy = %v", io.Energy)
	}
	un := att.Phase(Unattributed)
	// [8,9) at 300 W plus the observed third of the last sample at 600 W.
	if math.Abs(float64(un.Energy)-(300+600)) > 1e-6 {
		t.Errorf("unattributed energy = %v", un.Energy)
	}
	if math.Abs(float64(un.Time)-2) > 1e-9 {
		t.Errorf("unattributed time = %v", un.Time)
	}
	// AvgPower is energy/time.
	if math.Abs(float64(io.AvgPower)-200) > 1e-9 {
		t.Errorf("io avg power = %v", io.AvgPower)
	}
}

func TestAttributeEmptyPhaseNameLandsUnattributed(t *testing.T) {
	prof := &power.Profile{Interval: 1, Powers: []units.Watts{50}, LastPartial: 1}
	att, err := Attribute("m", []Interval{{"", 0, 1}}, prof)
	if err != nil {
		t.Fatal(err)
	}
	if len(att.Phases) != 1 || att.Phases[0].Phase != Unattributed {
		t.Errorf("phases = %+v", att.Phases)
	}
}

func TestAttributeRejectsBadInput(t *testing.T) {
	good := &power.Profile{Interval: 1, Powers: []units.Watts{1}, LastPartial: 1}
	if _, err := Attribute("m", nil, nil); err == nil {
		t.Error("nil profile accepted")
	}
	bad := &power.Profile{Interval: 1, Powers: []units.Watts{1}} // LastPartial unset
	if _, err := Attribute("m", nil, bad); err == nil {
		t.Error("invalid profile accepted")
	}
	if _, err := Attribute("m", []Interval{{"a", 5, 2}}, good); err == nil {
		t.Error("inverted interval accepted")
	}
	if _, err := Attribute("m", []Interval{{"a", 0, 2}, {"b", 1, 3}}, good); err == nil {
		t.Error("overlapping intervals accepted")
	}
}

func TestAttributionPhaseLookup(t *testing.T) {
	att := &Attribution{Phases: []PhaseEnergy{{Phase: "a", Energy: 5}}}
	if att.Phase("a").Energy != 5 {
		t.Error("lookup failed")
	}
	if z := att.Phase("missing"); z.Phase != "missing" || z.Energy != 0 {
		t.Errorf("missing phase = %+v", z)
	}
}

// TestReportByteStability pins the exporters' determinism: identical
// attributions render byte-identically, with phases in sorted name order.
func TestReportByteStability(t *testing.T) {
	prof := synthProfile()
	intervals := []Interval{{"b-phase", 0, 4}, {"a-phase", 4, 9}}
	render := func() (string, string) {
		att, err := Attribute("m", intervals, prof)
		if err != nil {
			t.Fatal(err)
		}
		var j, c bytes.Buffer
		if err := att.WriteJSON(&j); err != nil {
			t.Fatal(err)
		}
		if err := att.WriteCSV(&c); err != nil {
			t.Fatal(err)
		}
		return j.String(), c.String()
	}
	j1, c1 := render()
	j2, c2 := render()
	if j1 != j2 {
		t.Error("JSON rendering not byte-stable")
	}
	if c1 != c2 {
		t.Error("CSV rendering not byte-stable")
	}
	if !strings.HasSuffix(j1, "\n") {
		t.Error("JSON missing trailing newline")
	}
	lines := strings.Split(strings.TrimSpace(c1), "\n")
	if lines[0] != "phase,seconds,joules,avg_watts" {
		t.Errorf("CSV header = %q", lines[0])
	}
	// Sorted phase order: (unattributed) < a-phase < b-phase.
	if !strings.HasPrefix(lines[1], "(unattributed),") ||
		!strings.HasPrefix(lines[2], "a-phase,") ||
		!strings.HasPrefix(lines[3], "b-phase,") {
		t.Errorf("CSV rows out of order: %v", lines[1:])
	}
}

func TestNodePowerModel(t *testing.T) {
	pm := NodePowerModel()
	busy := float64(pm.watts("sim.step"))
	idle := float64(pm.watts(""))
	ioW := float64(pm.watts("io.dump"))
	if idle != 100 {
		t.Errorf("idle = %g", idle)
	}
	if math.Abs(busy-44000.0/150) > 1e-12 {
		t.Errorf("busy = %g", busy)
	}
	// The paper's central measurement: I/O draws near-busy power.
	if ioW <= idle+0.9*(busy-idle) || ioW > busy {
		t.Errorf("io draw = %g, want near busy (%g)", ioW, busy)
	}
	if pm.watts(Unattributed) != pm.Idle {
		t.Error("unattributed should draw idle")
	}
}

func TestPowerModelTraceAndAttributeRoundTrip(t *testing.T) {
	pm := NodePowerModel()
	intervals := []Interval{
		{"sim.step", 0, 2},
		{"io.dump", 2, 3},
		{"", 3, 3.5},
	}
	gt, err := pm.Trace(intervals)
	if err != nil {
		t.Fatal(err)
	}
	meter := power.Meter{Interval: 0.25, Name: "node-model"}
	prof, err := meter.Sample(gt)
	if err != nil {
		t.Fatal(err)
	}
	att, err := Attribute(meter.Name, intervals, prof)
	if err != nil {
		t.Fatal(err)
	}
	var sum float64
	for _, p := range att.Phases {
		sum += float64(p.Energy)
	}
	total := float64(prof.Energy())
	if d := math.Abs(sum-total) / total; d > 1e-9 {
		t.Errorf("round trip: phase sum %g vs %g", sum, total)
	}
	// Meter boundaries align with interval boundaries here, so the join
	// recovers the model's draw exactly.
	if got := att.Phase("sim.step").AvgPower; math.Abs(float64(got-pm.Busy)) > 1e-9 {
		t.Errorf("sim.step avg = %v, want %v", got, pm.Busy)
	}
	if got := att.Phase(Unattributed).AvgPower; math.Abs(float64(got-pm.Idle)) > 1e-9 {
		t.Errorf("gap avg = %v, want %v", got, pm.Idle)
	}
}

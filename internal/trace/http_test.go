package trace

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"insituviz/internal/telemetry"
)

func newTestHandler(t *testing.T) http.Handler {
	t.Helper()
	reg := telemetry.NewRegistry()
	reg.Counter("live.raw.dumps").Add(3)
	h := reg.Histogram("step.ms", []float64{1, 10, 100})
	h.Observe(5)
	h.Observe(50)
	tr := New(Options{})
	tr.Lane("driver").SpanAt("sim.step", "", 0, 1000)
	return NewHandler(reg, tr)
}

func get(t *testing.T, h http.Handler, path string) (*httptest.ResponseRecorder, string) {
	t.Helper()
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", path, nil))
	body, _ := io.ReadAll(rec.Result().Body)
	return rec, string(body)
}

func TestHandlerIndex(t *testing.T) {
	h := newTestHandler(t)
	rec, body := get(t, h, "/")
	if rec.Code != http.StatusOK || !strings.Contains(body, "/metrics") {
		t.Errorf("index: %d %q", rec.Code, body)
	}
	if rec, _ := get(t, h, "/nosuch"); rec.Code != http.StatusNotFound {
		t.Errorf("unknown path: %d", rec.Code)
	}
}

func TestHandlerMetrics(t *testing.T) {
	h := newTestHandler(t)
	rec, body := get(t, h, "/metrics")
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d", rec.Code)
	}
	if !strings.Contains(body, "counter live.raw.dumps 3") {
		t.Errorf("text exposition missing counter:\n%s", body)
	}
	// The histogram percentile lines of the text exposition.
	if !strings.Contains(body, "histogram step.ms p50") || !strings.Contains(body, "histogram step.ms p99") {
		t.Errorf("text exposition missing percentiles:\n%s", body)
	}

	rec, body = get(t, h, "/metrics?format=json")
	if rec.Code != http.StatusOK {
		t.Fatalf("json status %d", rec.Code)
	}
	var snap telemetry.Snapshot
	if err := json.Unmarshal([]byte(body), &snap); err != nil {
		t.Fatalf("json exposition does not parse: %v", err)
	}
	if snap.Counters["live.raw.dumps"] != 3 {
		t.Errorf("json counters = %v", snap.Counters)
	}
}

func TestHandlerTrace(t *testing.T) {
	h := newTestHandler(t)
	rec, body := get(t, h, "/trace")
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d", rec.Code)
	}
	events, _, err := ValidateChrome([]byte(body))
	if err != nil {
		t.Fatal(err)
	}
	if events == 0 {
		t.Error("trace endpoint returned no events")
	}
}

func TestHandlerNilBackends(t *testing.T) {
	h := NewHandler(nil, nil)
	if rec, _ := get(t, h, "/metrics"); rec.Code != http.StatusNotFound {
		t.Errorf("nil registry: %d", rec.Code)
	}
	if rec, _ := get(t, h, "/trace"); rec.Code != http.StatusNotFound {
		t.Errorf("nil tracer: %d", rec.Code)
	}
}

// TestServe exercises the real listener path the CLIs use.
func TestServe(t *testing.T) {
	reg := telemetry.NewRegistry()
	reg.Counter("x").Inc()
	addr, shutdown, err := Serve("127.0.0.1:0", NewHandler(reg, nil))
	if err != nil {
		t.Fatal(err)
	}
	defer shutdown()
	resp, err := http.Get("http://" + addr.String() + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(body), "counter x 1") {
		t.Errorf("served metrics: %d %q", resp.StatusCode, body)
	}
	if err := shutdown(); err != nil {
		t.Errorf("shutdown: %v", err)
	}
}

package trace

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strconv"

	"insituviz/internal/power"
	"insituviz/internal/units"
)

// Unattributed is the phase name charged for metered time no span covers
// — the timeline's gaps, the paper's "everything else" band.
const Unattributed = "(unattributed)"

// Interval is one piece of the phase step function: during [Start, End)
// the innermost active span was Phase ("" when no span was open).
// Intervals are contiguous and non-overlapping — exactly one phase is
// charged at every instant, which is what makes per-phase energies sum to
// the metered total.
type Interval struct {
	Phase string
	Start units.Seconds
	End   units.Seconds
}

// Duration returns the interval length.
func (iv Interval) Duration() units.Seconds { return iv.End - iv.Start }

// PhaseIntervals flattens the lane's hierarchical spans into the phase
// step function: at every instant the *innermost* active span wins, so a
// "viz.sample" span nested inside an "io.readback" span claims its own
// time and the readback keeps only the remainder. Gaps between spans
// yield ""-phased intervals.
func (lt *LaneTimeline) PhaseIntervals() []Interval {
	if lt == nil || len(lt.Spans) == 0 {
		return nil
	}
	// Collect begin/end edges and sweep them in time order, maintaining
	// the active-span stack. Spans is sorted by (start, depth), so a
	// parent always precedes its children.
	type edge struct {
		ts    units.Seconds
		begin bool
		name  string
		order int // tiebreak: ends before begins, outer begins first
	}
	edges := make([]edge, 0, 2*len(lt.Spans))
	for i, s := range lt.Spans {
		edges = append(edges, edge{s.Start, true, s.Name, i})
		edges = append(edges, edge{s.End, false, s.Name, i})
	}
	sort.Slice(edges, func(i, j int) bool {
		if edges[i].ts != edges[j].ts {
			return edges[i].ts < edges[j].ts
		}
		if edges[i].begin != edges[j].begin {
			return !edges[i].begin // ends first, so zero-length gaps don't invert nesting
		}
		if edges[i].begin {
			return edges[i].order < edges[j].order // outer span opens first
		}
		return edges[i].order > edges[j].order // inner span closes first
	})

	var out []Interval
	var stack []string
	prev := edges[0].ts
	for _, e := range edges {
		if e.ts > prev {
			phase := ""
			if len(stack) > 0 {
				phase = stack[len(stack)-1]
			}
			// Merge with the previous interval when the phase repeats.
			if n := len(out); n > 0 && out[n-1].Phase == phase && out[n-1].End == prev {
				out[n-1].End = e.ts
			} else {
				out = append(out, Interval{Phase: phase, Start: prev, End: e.ts})
			}
			prev = e.ts
		}
		if e.begin {
			stack = append(stack, e.name)
		} else if len(stack) > 0 {
			stack = stack[:len(stack)-1]
		}
	}
	return out
}

// PhaseEnergy is one row of an attribution: the time a phase was active
// within the meter's window, the energy the profile charged to it, and
// the resulting average draw.
type PhaseEnergy struct {
	Phase    string        `json:"phase"`
	Time     units.Seconds `json:"seconds"`
	Energy   units.Joules  `json:"joules"`
	AvgPower units.Watts   `json:"avg_watts"`
}

// Attribution is the result of joining a phase timeline against one
// metered power profile: per-phase energies that sum (exactly, up to
// float64 rounding) to the profile's total energy, because every metered
// instant is charged to exactly one phase — named, "", or outside-trace
// time all land in Unattributed.
type Attribution struct {
	Meter  string        `json:"meter"`
	Total  units.Joules  `json:"total_joules"`
	Window units.Seconds `json:"window_seconds"`
	// Phases is sorted by phase name; Unattributed sorts with the rest.
	Phases []PhaseEnergy `json:"phases"`
}

// Phase returns the named row, or a zero row if the phase never ran.
func (a *Attribution) Phase(name string) PhaseEnergy {
	for _, p := range a.Phases {
		if p.Phase == name {
			return p
		}
	}
	return PhaseEnergy{Phase: name}
}

// Attribute joins the phase step function against a metered profile — the
// paper's method: overlay the power profile on the execution timeline and
// integrate each phase's share. Each profile sample [a, b) with average
// power P contributes P x overlap(a, b, interval) to the interval's
// phase; sample time covered by no interval is charged to Unattributed.
// Samples honor LastPartial: the final interval is scaled by the observed
// fraction, exactly as Profile.Energy integrates it.
func Attribute(meter string, intervals []Interval, prof *power.Profile) (*Attribution, error) {
	if prof == nil {
		return nil, fmt.Errorf("trace: nil profile")
	}
	if err := prof.Validate(); err != nil {
		return nil, fmt.Errorf("trace: attribute %q: %w", meter, err)
	}
	for i, iv := range intervals {
		if iv.End < iv.Start {
			return nil, fmt.Errorf("trace: interval %d inverted [%v, %v]", i, iv.Start, iv.End)
		}
		if i > 0 && iv.Start < intervals[i-1].End {
			return nil, fmt.Errorf("trace: interval %d overlaps its predecessor", i)
		}
	}

	type acc struct {
		time   float64
		energy float64
	}
	phases := map[string]*acc{}
	charge := func(name string, dt, watts float64) {
		if dt <= 0 {
			return
		}
		if name == "" {
			name = Unattributed
		}
		a := phases[name]
		if a == nil {
			a = &acc{}
			phases[name] = a
		}
		a.time += dt
		a.energy += watts * dt
	}

	var window float64
	for i, w := range prof.Powers {
		frac := 1.0
		if i == len(prof.Powers)-1 {
			// Clamped: a degenerate LastPartial (outside (0, 1], or NaN
			// from a power window shorter than one meter period) must
			// not turn the overlap weight into a NaN that silently
			// uncharges the final sample and poisons the window total.
			frac = prof.LastFraction()
		}
		a := float64(prof.Start) + float64(i)*float64(prof.Interval)
		dur := float64(prof.Interval) * frac
		b := a + dur
		window += dur
		covered := 0.0
		for _, iv := range intervals {
			lo, hi := float64(iv.Start), float64(iv.End)
			if lo < a {
				lo = a
			}
			if hi > b {
				hi = b
			}
			if hi > lo {
				charge(iv.Phase, hi-lo, float64(w))
				covered += hi - lo
			}
		}
		// The remainder keeps the books balanced: charged time per
		// sample is exactly the sample duration, so energies sum to
		// Profile.Energy up to rounding.
		if rem := dur - covered; rem > 0 {
			charge(Unattributed, rem, float64(w))
		}
	}

	names := make([]string, 0, len(phases))
	for name := range phases {
		names = append(names, name)
	}
	sort.Strings(names)

	att := &Attribution{Meter: meter, Window: units.Seconds(window)}
	for _, name := range names {
		a := phases[name]
		row := PhaseEnergy{
			Phase:  name,
			Time:   units.Seconds(a.time),
			Energy: units.Joules(a.energy),
		}
		if a.time > 0 {
			row.AvgPower = units.Watts(a.energy / a.time)
		}
		att.Phases = append(att.Phases, row)
		att.Total += row.Energy
	}
	return att, nil
}

// WriteJSON renders the attribution as indented JSON with a trailing
// newline. Phases are pre-sorted, so the rendering is byte-stable for
// identical attributions.
func (a *Attribution) WriteJSON(w io.Writer) error {
	data, err := json.MarshalIndent(a, "", "  ")
	if err != nil {
		return fmt.Errorf("trace: marshal attribution: %w", err)
	}
	data = append(data, '\n')
	_, err = w.Write(data)
	return err
}

// WriteCSV renders the attribution as CSV rows (phase, seconds, joules,
// avg_watts) in phase-name order, byte-stable for identical attributions.
func (a *Attribution) WriteCSV(w io.Writer) error {
	if w == nil {
		return fmt.Errorf("trace: nil writer")
	}
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"phase", "seconds", "joules", "avg_watts"}); err != nil {
		return err
	}
	for _, p := range a.Phases {
		if err := cw.Write([]string{
			p.Phase,
			strconv.FormatFloat(float64(p.Time), 'g', -1, 64),
			strconv.FormatFloat(float64(p.Energy), 'g', -1, 64),
			strconv.FormatFloat(float64(p.AvgPower), 'g', -1, 64),
		}); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// PowerModel maps phase names to power draw, the inverse of attribution:
// given a live run's phase timeline (wall clock, no PDU attached), it
// synthesizes the ground-truth power trace the paper's machine would have
// drawn, which a power.Meter then samples into the 1 Hz-style profile the
// attribution consumes. Defaults are the Caddy per-node calibration.
type PowerModel struct {
	// Phases maps a phase name to its active draw. Phases not listed
	// draw Busy (a running but unmodeled phase).
	Phases map[string]units.Watts
	// Busy is the draw of unlisted named phases; Idle is the draw of
	// unattributed gaps.
	Busy units.Watts
	Idle units.Watts
}

// NodePowerModel returns the per-node Caddy calibration (100 W idle,
// ~293 W busy) with the paper's near-busy I/O draw for io.* phases — the
// measured fact that polling keeps cores hot during I/O waits.
func NodePowerModel() PowerModel {
	const idle, busy = 100, 44000.0 / 150
	ioWait := idle + 0.95*(busy-idle)
	return PowerModel{
		Phases: map[string]units.Watts{
			"io.dump": units.Watts(ioWait),
			"io.read": units.Watts(ioWait),
		},
		Busy: busy,
		Idle: idle,
	}
}

// watts returns the model draw for a phase name.
func (m PowerModel) watts(phase string) units.Watts {
	if phase == "" || phase == Unattributed {
		return m.Idle
	}
	if w, ok := m.Phases[phase]; ok {
		return w
	}
	return m.Busy
}

// Trace synthesizes the piecewise-constant ground-truth power trace of a
// phase step function under the model. Intervals must be contiguous in
// time (PhaseIntervals output is).
func (m PowerModel) Trace(intervals []Interval) (*power.Trace, error) {
	tr := &power.Trace{}
	for _, iv := range intervals {
		if err := tr.Append(iv.Start, iv.End, m.watts(iv.Phase)); err != nil {
			return nil, fmt.Errorf("trace: power model: %w", err)
		}
	}
	return tr, nil
}

//go:build race

package trace

// raceEnabled gates the allocation guards: the race detector's
// instrumentation allocates, which would fail them spuriously.
const raceEnabled = true

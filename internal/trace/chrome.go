package trace

import (
	"encoding/json"
	"fmt"
	"io"

	"insituviz/internal/power"
	"insituviz/internal/units"
)

// chromeEvent is one event in the Chrome trace-event (catapult) JSON
// format, loadable in Perfetto or chrome://tracing. Every event carries
// name, ph, ts, pid, and tid — the required fields of the format — with
// dur and args added per phase type.
type chromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	TS   float64        `json:"ts"` // microseconds
	Dur  *float64       `json:"dur,omitempty"`
	PID  int            `json:"pid"`
	TID  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

// chromeDoc is the JSON-object form of the trace-event format.
type chromeDoc struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// CounterTrack is one counter series rendered as a Perfetto counter
// track above the span timeline. Two source shapes are supported: a
// metered power profile (the paper's Fig. 4 view — watts stepping at
// sample boundaries, closed with a final 0) or a generic point series
// (e.g. the live model's predicted-vs-actual seconds per sample).
// Profile wins when both are set.
type CounterTrack struct {
	Name    string
	Profile *power.Profile
	// Points is the generic series, emitted in order with Unit as the
	// argument key ("value" when empty).
	Points []CounterPoint
	Unit   string
}

// CounterPoint is one sample of a generic counter track.
type CounterPoint struct {
	TS    units.Seconds
	Value float64
}

// tracePID is the process ID all exported events share: the trace models
// one coupled job on one machine.
const tracePID = 1

// counterTIDBase offsets counter-track thread IDs past the span lanes so
// the two ID spaces never collide.
const counterTIDBase = 1000

// WriteChrome serializes a timeline (plus optional power counter tracks)
// as a Chrome trace-event JSON document. Lanes become named threads
// (thread_name metadata + one complete "X" event per span, "i" events for
// instants); each counter track becomes a "C" event series stepping at
// its profile's sample boundaries. Output is deterministic: lanes in
// registration order, spans in start order, counters in argument order.
func WriteChrome(w io.Writer, tl *Timeline, counters ...CounterTrack) error {
	if w == nil {
		return fmt.Errorf("trace: nil writer")
	}
	if tl == nil {
		return fmt.Errorf("trace: nil timeline")
	}
	events := []chromeEvent{} // non-nil: an empty timeline still has a traceEvents array
	for _, lt := range tl.Lanes {
		events = append(events, chromeEvent{
			Name: "thread_name", Ph: "M", PID: tracePID, TID: lt.ID,
			Args: map[string]any{"name": lt.Name},
		})
		for _, s := range lt.Spans {
			dur := micros(s.Duration())
			ev := chromeEvent{
				Name: s.Name, Ph: "X", TS: micros(s.Start), Dur: &dur,
				PID: tracePID, TID: lt.ID,
			}
			if s.Detail != "" || s.Open {
				ev.Args = map[string]any{}
				if s.Detail != "" {
					ev.Args["detail"] = s.Detail
				}
				if s.Open {
					ev.Args["open"] = true
				}
			}
			events = append(events, ev)
		}
		for _, in := range lt.Instants {
			events = append(events, chromeEvent{
				Name: in.Name, Ph: "i", TS: micros(in.TS),
				PID: tracePID, TID: lt.ID,
				Args: map[string]any{"s": "t"}, // thread-scoped instant
			})
		}
	}
	for ci, ct := range counters {
		tid := counterTIDBase + ci
		if p := ct.Profile; p != nil && len(p.Powers) > 0 {
			for i, watts := range p.Powers {
				ts := float64(p.Start) + float64(i)*float64(p.Interval)
				events = append(events, chromeEvent{
					Name: ct.Name, Ph: "C", TS: micros(units.Seconds(ts)),
					PID: tracePID, TID: tid,
					Args: map[string]any{"W": float64(watts)},
				})
			}
			// Close the step function at the observed end of the profile.
			events = append(events, chromeEvent{
				Name: ct.Name, Ph: "C",
				TS:  micros(p.Start + p.Duration()),
				PID: tracePID, TID: tid,
				Args: map[string]any{"W": 0.0},
			})
			continue
		}
		unit := ct.Unit
		if unit == "" {
			unit = "value"
		}
		for _, pt := range ct.Points {
			events = append(events, chromeEvent{
				Name: ct.Name, Ph: "C", TS: micros(pt.TS),
				PID: tracePID, TID: tid,
				Args: map[string]any{unit: pt.Value},
			})
		}
	}
	enc := json.NewEncoder(w)
	return enc.Encode(chromeDoc{TraceEvents: events, DisplayTimeUnit: "ms"})
}

// ValidateChrome parses a Chrome trace-event JSON document and checks the
// structural contract the exporter promises: the traceEvents array exists
// and every event has name, ph, ts, pid, and tid. It returns the event
// count and the counter-event count, so callers can additionally require
// power counter tracks. This is the check CI's trace-smoke step runs on
// the artifact it just produced.
func ValidateChrome(data []byte) (events, counterEvents int, err error) {
	var doc struct {
		TraceEvents []map[string]json.RawMessage `json:"traceEvents"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		return 0, 0, fmt.Errorf("trace: not a trace-event document: %w", err)
	}
	if doc.TraceEvents == nil {
		return 0, 0, fmt.Errorf("trace: missing traceEvents array")
	}
	for i, ev := range doc.TraceEvents {
		for _, field := range [...]string{"name", "ph", "ts", "pid", "tid"} {
			if _, ok := ev[field]; !ok {
				return 0, 0, fmt.Errorf("trace: event %d missing required field %q", i, field)
			}
		}
		var ph string
		if err := json.Unmarshal(ev["ph"], &ph); err != nil {
			return 0, 0, fmt.Errorf("trace: event %d: ph is not a string", i)
		}
		if ph == "C" {
			counterEvents++
		}
	}
	return len(doc.TraceEvents), counterEvents, nil
}

func micros(s units.Seconds) float64 { return float64(s) * 1e6 }

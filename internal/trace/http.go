package trace

import (
	"fmt"
	"net"
	"net/http"

	"insituviz/internal/telemetry"
)

// NewHandler returns the live exposition endpoint both CLIs mount behind
// their -http flag, so a long run can be observed while it executes:
//
//	GET /         plain-text index of the endpoints
//	GET /metrics  telemetry snapshot, text exposition (?format=json for JSON)
//	GET /trace    current ring-buffer contents as Chrome trace-event JSON
//
// Either argument may be nil; the corresponding endpoint then reports 404.
// Handlers snapshot on every request — the scrape sees the run as it is
// now, under the usual not-a-consistent-cut contract.
func NewHandler(reg *telemetry.Registry, tr *Tracer) http.Handler {
	var src telemetry.Snapshotter
	if reg != nil {
		src = reg
	}
	return NewHandlerFrom(src, tr)
}

// Endpoint is an extra route mounted next to /metrics and /trace by
// NewHandlerFrom — the hook livemodel's /model endpoint uses, so every
// observability surface shares one index page and one listener.
type Endpoint struct {
	Path string // absolute, e.g. "/model"
	Desc string // one line for the index page
	H    http.Handler
}

// NewHandlerFrom is NewHandler over any snapshot source — typically a
// telemetry.Union composing several components' registries (the live run
// and the Cinema query server) into one /metrics exposition. Extra
// endpoints are mounted as given and listed on the index; entries with a
// nil handler or empty path are skipped.
func NewHandlerFrom(src telemetry.Snapshotter, tr *Tracer, extra ...Endpoint) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			http.NotFound(w, r)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "insituviz live exposition")
		fmt.Fprintln(w, "  /metrics  telemetry snapshot (text; ?format=json)")
		fmt.Fprintln(w, "  /trace    timeline as Chrome trace-event JSON")
		for _, e := range extra {
			if e.H == nil || e.Path == "" {
				continue
			}
			fmt.Fprintf(w, "  %-9s %s\n", e.Path, e.Desc)
		}
	})
	for _, e := range extra {
		if e.H == nil || e.Path == "" {
			continue
		}
		mux.Handle(e.Path, e.H)
	}
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		if src == nil {
			http.Error(w, "no telemetry registry attached", http.StatusNotFound)
			return
		}
		snap := src.Snapshot()
		if r.URL.Query().Get("format") == "json" {
			w.Header().Set("Content-Type", "application/json")
			if err := snap.WriteJSON(w); err != nil {
				http.Error(w, err.Error(), http.StatusInternalServerError)
			}
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		if err := snap.WriteText(w); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	mux.HandleFunc("/trace", func(w http.ResponseWriter, r *http.Request) {
		if tr == nil {
			http.Error(w, "no tracer attached", http.StatusNotFound)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		if err := WriteChrome(w, tr.Snapshot()); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	return mux
}

// Serve mounts h on a listener bound to addr (":0" picks a free port) and
// serves it on a background goroutine. It returns the bound address — so
// callers can print the real port — and a shutdown func that closes the
// listener. Serving errors after shutdown are expected and discarded.
func Serve(addr string, h http.Handler) (net.Addr, func() error, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, nil, fmt.Errorf("trace: listen %s: %w", addr, err)
	}
	srv := &http.Server{Handler: h}
	go func() { _ = srv.Serve(ln) }()
	return ln.Addr(), srv.Close, nil
}

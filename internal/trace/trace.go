// Package trace is the timeline half of the observability stack: a
// low-overhead tracer recording hierarchical begin/end spans and instant
// events into preallocated per-lane ring buffers, plus an attribution
// engine that joins a completed timeline against metered power profiles
// to produce per-phase energy breakdowns.
//
// The package exists because the paper's central measurement is
// *time-aligned*: 1 Hz power profiles are overlaid on the pipeline's phase
// timeline so each phase (simulation, in-situ visualization, I/O,
// post-hoc readback) can be attributed its share of energy. The telemetry
// registry answers "how much, how often"; this package answers "when",
// which is what makes the overlay — and therefore the paper's per-phase
// energy attribution — possible.
//
// The tracer inherits the telemetry package's contracts:
//
//   - Zero allocation on the hot path. Begin, End, and Instant write one
//     preallocated ring slot under a per-lane mutex; names are the
//     caller's string constants, never formatted or copied. Registration
//     (Tracer.Lane) may allocate; callers hold the lane handle.
//
//   - Nil safety. Every hot-path method is a no-op on a nil receiver and
//     a nil *Tracer returns nil lanes, so instrumentation is wired
//     unconditionally and disabled by not supplying a tracer.
//
//   - Deterministic shape. Snapshot orders lanes by registration and
//     events by ring order; exports render byte-identically for identical
//     timelines.
//
// Timestamps are int64 nanoseconds. Live components use the tracer's
// monotonic clock (Begin/End/Instant); the simulated-machine components
// pass explicit simulated-time stamps (BeginAt/EndAt/InstantAt/SpanAt),
// so one timeline format serves both clocks of the design (DESIGN.md §4).
package trace

import (
	"sync"
	"time"

	"insituviz/internal/units"
)

// DefaultLaneCapacity is the per-lane ring size used when Options leaves
// it zero: enough for the live coupled runs (hundreds of steps, a handful
// of samples) with generous headroom; older events are overwritten once
// the ring wraps, and the overwrite count is reported on the snapshot.
const DefaultLaneCapacity = 8192

// EventKind discriminates the three record shapes in a lane.
type EventKind uint8

// The event kinds of the trace model.
const (
	// EventBegin opens a span; it nests under any span already open in
	// the same lane.
	EventBegin EventKind = iota
	// EventEnd closes the innermost open span.
	EventEnd
	// EventInstant marks a point in time (a trigger firing, a dump
	// landing) with no duration.
	EventInstant
)

// String names the kind.
func (k EventKind) String() string {
	switch k {
	case EventBegin:
		return "begin"
	case EventEnd:
		return "end"
	case EventInstant:
		return "instant"
	}
	return "event(?)"
}

// Event is one ring-buffer record. Name is the span/instant name (empty
// for EventEnd, which closes by position, not by name); Detail is an
// optional free-form annotation surfaced in exports but ignored by the
// attribution engine.
type Event struct {
	Kind   EventKind
	Name   string
	Detail string
	TS     int64 // nanoseconds on the tracer's clock
}

// Options configures a Tracer.
type Options struct {
	// LaneCapacity is the ring size of each lane (events). Zero selects
	// DefaultLaneCapacity.
	LaneCapacity int
	// Clock supplies timestamps for Begin/End/Instant, in nanoseconds.
	// Nil selects a wall clock monotonic from New. Explicit-timestamp
	// methods (BeginAt and friends) never consult the clock.
	Clock func() int64
}

// Tracer owns a set of named lanes — one per simulated rank or component —
// all sharing one clock, so spans recorded from different lanes are
// mutually ordered. A nil *Tracer returns nil lanes from Lane, which
// no-op on every method.
type Tracer struct {
	mu     sync.Mutex
	cap    int
	clock  func() int64
	lanes  []*Lane
	byName map[string]*Lane
}

// New returns a tracer with the given options.
func New(opt Options) *Tracer {
	c := opt.LaneCapacity
	if c <= 0 {
		c = DefaultLaneCapacity
	}
	clock := opt.Clock
	if clock == nil {
		epoch := time.Now()
		clock = func() int64 { return int64(time.Since(epoch)) }
	}
	return &Tracer{cap: c, clock: clock, byName: map[string]*Lane{}}
}

// Now reads the tracer's clock; 0 on a nil tracer.
func (t *Tracer) Now() int64 {
	if t == nil {
		return 0
	}
	return t.clock()
}

// Lane returns the lane registered under name, creating it on first use
// (the ring is preallocated here, not on the hot path). Lane IDs are
// assigned in registration order and become thread IDs in exports.
// Returns nil on a nil tracer.
func (t *Tracer) Lane(name string) *Lane {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if l, ok := t.byName[name]; ok {
		return l
	}
	l := &Lane{name: name, id: len(t.lanes), clock: t.clock, ring: make([]Event, t.cap)}
	t.lanes = append(t.lanes, l)
	t.byName[name] = l
	return l
}

// Lane is one timeline track. All methods are safe for concurrent use:
// helper goroutines (the worker pool's chunks) may record into the lane
// handle their closure captured, and events serialize — with timestamps
// taken under the lane lock, so ring order is timestamp order.
type Lane struct {
	name  string
	id    int
	clock func() int64

	mu   sync.Mutex
	ring []Event
	next uint64 // total events ever recorded; next%len(ring) is the write slot
}

// Name returns the lane's registered name; "" on nil.
func (l *Lane) Name() string {
	if l == nil {
		return ""
	}
	return l.name
}

// record writes one event slot. Callers hold no locks.
func (l *Lane) record(kind EventKind, name, detail string, ts int64, onClock bool) {
	if l == nil {
		return
	}
	l.mu.Lock()
	if onClock {
		ts = l.clock()
	}
	l.ring[l.next%uint64(len(l.ring))] = Event{Kind: kind, Name: name, Detail: detail, TS: ts}
	l.next++
	l.mu.Unlock()
}

// Begin opens a span named name at the current clock, nesting under any
// open span. Pair with End. No-op on nil.
func (l *Lane) Begin(name string) { l.record(EventBegin, name, "", 0, true) }

// End closes the innermost open span at the current clock. No-op on nil.
func (l *Lane) End() { l.record(EventEnd, "", "", 0, true) }

// Instant records a point event at the current clock. No-op on nil.
func (l *Lane) Instant(name string) { l.record(EventInstant, name, "", 0, true) }

// BeginAt opens a span at an explicit timestamp (simulated time).
func (l *Lane) BeginAt(name string, ts int64) { l.record(EventBegin, name, "", ts, false) }

// EndAt closes the innermost open span at an explicit timestamp.
func (l *Lane) EndAt(ts int64) { l.record(EventEnd, "", "", ts, false) }

// InstantAt records a point event at an explicit timestamp.
func (l *Lane) InstantAt(name string, ts int64) { l.record(EventInstant, name, "", ts, false) }

// SpanAt records a complete span [start, end] with an optional detail
// annotation — the one-call form the simulated machine uses for its
// already-finished phases.
func (l *Lane) SpanAt(name, detail string, start, end int64) {
	if l == nil {
		return
	}
	l.record(EventBegin, name, detail, start, false)
	l.record(EventEnd, "", "", end, false)
}

// Span is one reconstructed begin/end pair. Open spans (begun but not yet
// ended when the snapshot was taken) are closed at the snapshot's end
// timestamp and flagged.
type Span struct {
	Name   string
	Detail string
	Start  units.Seconds
	End    units.Seconds
	Depth  int // nesting depth; 0 for top-level spans
	Open   bool
}

// Duration returns the span length.
func (s Span) Duration() units.Seconds { return s.End - s.Start }

// Instant is one reconstructed point event.
type Instant struct {
	Name string
	TS   units.Seconds
}

// LaneTimeline is one lane's reconstructed history.
type LaneTimeline struct {
	Name string
	ID   int
	// Spans are the reconstructed spans in start order (begin order in
	// the ring); Instants are point events in ring order.
	Spans    []Span
	Instants []Instant
	// Dropped counts events lost to ring overwrite; Orphans counts End
	// events whose Begin was overwritten (their spans are not
	// reconstructable and are skipped).
	Dropped int64
	Orphans int64
}

// Timeline is a point-in-time copy of every lane, the unit the exporters
// and the attribution engine consume.
type Timeline struct {
	Lanes []LaneTimeline
}

// Snapshot reconstructs every lane's timeline from its ring contents.
// Like the telemetry snapshot, it is not a consistent cut under
// concurrent recording — each lane is copied under its own lock — which
// is the live-exposition contract. Returns an empty timeline on nil.
func (t *Tracer) Snapshot() *Timeline {
	tl := &Timeline{}
	if t == nil {
		return tl
	}
	t.mu.Lock()
	lanes := append([]*Lane(nil), t.lanes...)
	t.mu.Unlock()
	for _, l := range lanes {
		tl.Lanes = append(tl.Lanes, l.timeline())
	}
	return tl
}

// Lane returns the named lane's timeline, or nil if absent.
func (tl *Timeline) Lane(name string) *LaneTimeline {
	for i := range tl.Lanes {
		if tl.Lanes[i].Name == name {
			return &tl.Lanes[i]
		}
	}
	return nil
}

// timeline copies the ring under the lane lock and reconstructs spans.
func (l *Lane) timeline() LaneTimeline {
	l.mu.Lock()
	n := l.next
	size := uint64(len(l.ring))
	count := n
	if count > size {
		count = size
	}
	events := make([]Event, count)
	for i := uint64(0); i < count; i++ {
		events[i] = l.ring[(n-count+i)%size]
	}
	l.mu.Unlock()

	lt := LaneTimeline{Name: l.name, ID: l.id, Dropped: int64(n - count)}

	// Reconstruct spans with a stack walk. An End with an empty stack is
	// an orphan: its Begin was overwritten (or never recorded).
	type open struct {
		name   string
		detail string
		ts     int64
		depth  int
	}
	var stack []open
	var last int64
	for _, ev := range events {
		if ev.TS > last {
			last = ev.TS
		}
		switch ev.Kind {
		case EventBegin:
			stack = append(stack, open{ev.Name, ev.Detail, ev.TS, len(stack)})
		case EventEnd:
			if len(stack) == 0 {
				lt.Orphans++
				continue
			}
			o := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			lt.Spans = append(lt.Spans, Span{
				Name: o.name, Detail: o.detail,
				Start: nsToSeconds(o.ts), End: nsToSeconds(ev.TS), Depth: o.depth,
			})
		case EventInstant:
			lt.Instants = append(lt.Instants, Instant{Name: ev.Name, TS: nsToSeconds(ev.TS)})
		}
	}
	// Close still-open spans at the lane's last observed instant so a
	// mid-run snapshot shows them; deepest first so starts stay ordered
	// after the sort below.
	for i := len(stack) - 1; i >= 0; i-- {
		o := stack[i]
		lt.Spans = append(lt.Spans, Span{
			Name: o.name, Detail: o.detail,
			Start: nsToSeconds(o.ts), End: nsToSeconds(last), Depth: o.depth, Open: true,
		})
	}
	// Ends pop inner spans first; re-order by (start, depth) so the
	// timeline reads chronologically and exports are deterministic.
	sortSpans(lt.Spans)
	return lt
}

// sortSpans orders by start time, then depth, then name — a stable
// chronological order (insertion sort: span counts are modest and the
// input is nearly sorted already).
func sortSpans(spans []Span) {
	for i := 1; i < len(spans); i++ {
		for j := i; j > 0 && spanLess(spans[j], spans[j-1]); j-- {
			spans[j], spans[j-1] = spans[j-1], spans[j]
		}
	}
}

func spanLess(a, b Span) bool {
	if a.Start != b.Start {
		return a.Start < b.Start
	}
	if a.Depth != b.Depth {
		return a.Depth < b.Depth
	}
	return a.Name < b.Name
}

func nsToSeconds(ns int64) units.Seconds { return units.Seconds(float64(ns) / 1e9) }

package trace

import (
	"math"
	"testing"

	"insituviz/internal/power"
	"insituviz/internal/units"
)

// TestAttributeSubPeriodWindow: a run shorter than one meter period
// produces a single-sample profile with a fractional LastPartial; the
// attribution must weight that sample by the observed fraction so the
// per-phase energies still sum to the profile's total energy.
func TestAttributeSubPeriodWindow(t *testing.T) {
	intervals := []Interval{
		{Phase: "sim.step", Start: 0, End: 10},
		{Phase: "io.dump", Start: 10, End: 24},
	}
	model := NodePowerModel()
	tr, err := model.Trace(intervals)
	if err != nil {
		t.Fatal(err)
	}
	// One-minute meter over a 24-second run: a single sample with
	// LastPartial = 24/60.
	prof, err := power.Meter{Interval: units.Minutes(1), Name: "pdu"}.Sample(tr)
	if err != nil {
		t.Fatal(err)
	}
	if len(prof.Powers) != 1 || math.Abs(prof.LastPartial-24.0/60) > 1e-12 {
		t.Fatalf("profile = %d samples, LastPartial %g; want 1 sample, 0.4", len(prof.Powers), prof.LastPartial)
	}

	att, err := Attribute("pdu", intervals, prof)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := float64(att.Window), 24.0; math.Abs(got-want) > 1e-9 {
		t.Errorf("window = %g s, want %g", got, want)
	}
	if got, want := float64(att.Total), float64(prof.Energy()); math.Abs(got-want) > 1e-6*want {
		t.Errorf("attributed total %g J != profile energy %g J", got, want)
	}
	var sum float64
	for _, p := range att.Phases {
		sum += float64(p.Energy)
	}
	if math.Abs(sum-float64(att.Total)) > 1e-9 {
		t.Errorf("phase energies sum to %g, total says %g", sum, float64(att.Total))
	}
}

// TestAttributeRejectsNaNLastPartial: a hand-built profile with a NaN
// LastPartial (division by a zero meter period) must be rejected up
// front instead of silently uncharging the final sample.
func TestAttributeRejectsNaNLastPartial(t *testing.T) {
	prof := &power.Profile{
		Interval:    units.Minutes(1),
		Powers:      []units.Watts{200},
		LastPartial: math.NaN(),
	}
	_, err := Attribute("pdu", []Interval{{Phase: "sim.step", Start: 0, End: 30}}, prof)
	if err == nil {
		t.Fatal("Attribute accepted a profile with NaN LastPartial")
	}
}

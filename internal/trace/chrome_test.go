package trace

import (
	"bytes"
	"encoding/json"
	"testing"

	"insituviz/internal/power"
	"insituviz/internal/units"
)

func buildTimeline() *Tracer {
	tr := New(Options{})
	drv := tr.Lane("driver")
	drv.SpanAt("sim.step", "", 0, 1000)
	drv.BeginAt("viz.sample", 1000)
	drv.BeginAt("viz.render", 1100)
	drv.EndAt(1600)
	drv.EndAt(2000)
	drv.InstantAt("dump.landed", 2000)
	tr.Lane("render.rank0").SpanAt("render.rank", "mask 0", 1100, 1500)
	return tr
}

// TestWriteChromeRoundTrip is the export half of the acceptance criterion:
// the document round-trips through encoding/json with name/ph/ts/pid/tid
// present on every event, plus power counter tracks.
func TestWriteChromeRoundTrip(t *testing.T) {
	tr := buildTimeline()
	prof := &power.Profile{
		Interval:    units.Seconds(1e-6),
		Powers:      []units.Watts{100, 250},
		LastPartial: 1,
	}
	var buf bytes.Buffer
	if err := WriteChrome(&buf, tr.Snapshot(), CounterTrack{Name: "power", Profile: prof}); err != nil {
		t.Fatal(err)
	}
	events, counters, err := ValidateChrome(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	// 2 thread_name metadata + 4 spans + 1 instant + 2 counter samples +
	// 1 closing counter.
	if events != 10 {
		t.Errorf("events = %d, want 10", events)
	}
	if counters != 3 {
		t.Errorf("counter events = %d, want 3", counters)
	}

	var doc struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			TS   float64        `json:"ts"`
			Dur  float64        `json:"dur"`
			PID  int            `json:"pid"`
			TID  int            `json:"tid"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	if doc.DisplayTimeUnit != "ms" {
		t.Errorf("displayTimeUnit = %q", doc.DisplayTimeUnit)
	}
	byPh := map[string]int{}
	var sawDetail, sawCounterArg bool
	for _, e := range doc.TraceEvents {
		byPh[e.Ph]++
		if e.Ph == "X" && e.Args["detail"] == "mask 0" {
			sawDetail = true
		}
		if e.Ph == "C" {
			if _, ok := e.Args["W"]; ok {
				sawCounterArg = true
			}
			if e.TID < counterTIDBase {
				t.Errorf("counter tid %d collides with span lanes", e.TID)
			}
		}
	}
	if byPh["M"] != 2 || byPh["X"] != 4 || byPh["i"] != 1 || byPh["C"] != 3 {
		t.Errorf("event phases = %v", byPh)
	}
	if !sawDetail {
		t.Error("span detail not exported")
	}
	if !sawCounterArg {
		t.Error("counter events missing W argument")
	}
}

// TestWriteChromeByteStable pins the exporter's determinism.
func TestWriteChromeByteStable(t *testing.T) {
	render := func() string {
		var buf bytes.Buffer
		if err := WriteChrome(&buf, buildTimeline().Snapshot()); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}
	if render() != render() {
		t.Error("identical timelines render differently")
	}
}

func TestWriteChromeErrors(t *testing.T) {
	if err := WriteChrome(nil, &Timeline{}); err == nil {
		t.Error("nil writer accepted")
	}
	var buf bytes.Buffer
	if err := WriteChrome(&buf, nil); err == nil {
		t.Error("nil timeline accepted")
	}
}

func TestWriteChromeEmptyTimeline(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteChrome(&buf, &Timeline{}); err != nil {
		t.Fatal(err)
	}
	events, _, err := ValidateChrome(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if events != 0 {
		t.Errorf("events = %d", events)
	}
}

func TestValidateChromeRejects(t *testing.T) {
	if _, _, err := ValidateChrome([]byte("not json")); err == nil {
		t.Error("garbage accepted")
	}
	if _, _, err := ValidateChrome([]byte(`{}`)); err == nil {
		t.Error("missing traceEvents accepted")
	}
	if _, _, err := ValidateChrome([]byte(`{"traceEvents":[{"name":"x","ph":"X"}]}`)); err == nil {
		t.Error("event missing ts/pid/tid accepted")
	}
	if _, _, err := ValidateChrome([]byte(`{"traceEvents":[{"name":"x","ph":7,"ts":0,"pid":1,"tid":1}]}`)); err == nil {
		t.Error("non-string ph accepted")
	}
}

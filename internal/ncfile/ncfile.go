// Package ncfile implements the netCDF "classic" binary file format
// (CDF-1, and CDF-2 with 64-bit offsets) — the output format the paper's
// post-processing pipeline writes through PIO/parallel-netCDF. Both the
// writer and the reader implement the actual on-disk layout (magic, dim /
// attribute / variable lists, 4-byte alignment, big-endian data, record
// variables over an unlimited dimension), so the raw output sizes the study
// depends on are byte-accurate rather than assumed.
//
// The supported subset covers what a field dump needs: SHORT/INT/FLOAT/
// DOUBLE variables over fixed and unlimited dimensions, plus CHAR/INT/
// FLOAT/DOUBLE attributes.
package ncfile

import (
	"errors"
	"fmt"
)

// Type is a netCDF external data type.
type Type int32

// The netCDF classic external types (file-format tag values).
const (
	Byte   Type = 1
	Char   Type = 2
	Short  Type = 3
	Int    Type = 4
	Float  Type = 5
	Double Type = 6
)

// Size returns the external size of one value of the type in bytes.
func (t Type) Size() int {
	switch t {
	case Byte, Char:
		return 1
	case Short:
		return 2
	case Int, Float:
		return 4
	case Double:
		return 8
	}
	return 0
}

// String names the type as in the netCDF documentation.
func (t Type) String() string {
	switch t {
	case Byte:
		return "NC_BYTE"
	case Char:
		return "NC_CHAR"
	case Short:
		return "NC_SHORT"
	case Int:
		return "NC_INT"
	case Float:
		return "NC_FLOAT"
	case Double:
		return "NC_DOUBLE"
	}
	return fmt.Sprintf("NC_UNKNOWN(%d)", int32(t))
}

func (t Type) validForVariable() bool {
	switch t {
	case Short, Int, Float, Double:
		return true
	}
	return false
}

// ErrFormat is returned when decoding malformed or unsupported files.
var ErrFormat = errors.New("ncfile: malformed or unsupported file")

// Dimension is a named axis. Length 0 marks the unlimited (record)
// dimension; a file may have at most one.
type Dimension struct {
	Name   string
	Length int
}

// Unlimited reports whether the dimension is the record dimension.
func (d Dimension) Unlimited() bool { return d.Length == 0 }

// Attribute is a named metadata value attached to a variable or to the
// file. Text carries Char attributes; Values carries numeric ones (encoded
// per Type).
type Attribute struct {
	Name   string
	Type   Type
	Text   string
	Values []float64
}

// TextAttribute returns a Char attribute.
func TextAttribute(name, text string) Attribute {
	return Attribute{Name: name, Type: Char, Text: text}
}

// NumericAttribute returns a numeric attribute of the given type.
func NumericAttribute(name string, t Type, values ...float64) Attribute {
	return Attribute{Name: name, Type: t, Values: values}
}

// Variable is an n-dimensional array over the file's dimensions.
type Variable struct {
	Name  string
	Type  Type
	Dims  []int // dimension IDs, slowest-varying first
	Attrs []Attribute

	data []float64 // row-major values; for record vars, all records concatenated
}

// File is an in-memory netCDF dataset that can be encoded to and decoded
// from the classic binary format.
type File struct {
	Dims        []Dimension
	GlobalAttrs []Attribute
	Vars        []Variable

	numRecs int
}

// New returns an empty dataset.
func New() *File { return &File{} }

// AddDimension defines a dimension and returns its ID. Length 0 declares
// the unlimited dimension.
func (f *File) AddDimension(name string, length int) (int, error) {
	if name == "" {
		return 0, fmt.Errorf("ncfile: empty dimension name")
	}
	if length < 0 {
		return 0, fmt.Errorf("ncfile: negative length %d for dimension %q", length, name)
	}
	for _, d := range f.Dims {
		if d.Name == name {
			return 0, fmt.Errorf("ncfile: duplicate dimension %q", name)
		}
		if length == 0 && d.Unlimited() {
			return 0, fmt.Errorf("ncfile: second unlimited dimension %q", name)
		}
	}
	f.Dims = append(f.Dims, Dimension{Name: name, Length: length})
	return len(f.Dims) - 1, nil
}

// AddVariable defines a variable over the given dimension IDs and returns
// its ID. If the unlimited dimension is used it must come first.
func (f *File) AddVariable(name string, t Type, dims []int) (int, error) {
	if name == "" {
		return 0, fmt.Errorf("ncfile: empty variable name")
	}
	if !t.validForVariable() {
		return 0, fmt.Errorf("ncfile: type %v not supported for variables", t)
	}
	for _, v := range f.Vars {
		if v.Name == name {
			return 0, fmt.Errorf("ncfile: duplicate variable %q", name)
		}
	}
	for i, d := range dims {
		if d < 0 || d >= len(f.Dims) {
			return 0, fmt.Errorf("ncfile: variable %q references unknown dimension %d", name, d)
		}
		if f.Dims[d].Unlimited() && i != 0 {
			return 0, fmt.Errorf("ncfile: unlimited dimension must be first in variable %q", name)
		}
	}
	f.Vars = append(f.Vars, Variable{Name: name, Type: t, Dims: append([]int(nil), dims...)})
	return len(f.Vars) - 1, nil
}

// AddGlobalAttribute attaches a file-level attribute.
func (f *File) AddGlobalAttribute(a Attribute) error {
	if err := checkAttr(a); err != nil {
		return err
	}
	f.GlobalAttrs = append(f.GlobalAttrs, a)
	return nil
}

// AddVariableAttribute attaches an attribute to variable varID.
func (f *File) AddVariableAttribute(varID int, a Attribute) error {
	if varID < 0 || varID >= len(f.Vars) {
		return fmt.Errorf("ncfile: unknown variable %d", varID)
	}
	if err := checkAttr(a); err != nil {
		return err
	}
	f.Vars[varID].Attrs = append(f.Vars[varID].Attrs, a)
	return nil
}

func checkAttr(a Attribute) error {
	if a.Name == "" {
		return fmt.Errorf("ncfile: empty attribute name")
	}
	switch a.Type {
	case Char:
		if a.Values != nil {
			return fmt.Errorf("ncfile: char attribute %q with numeric values", a.Name)
		}
	case Int, Float, Double, Short, Byte:
		if len(a.Values) == 0 {
			return fmt.Errorf("ncfile: numeric attribute %q with no values", a.Name)
		}
	default:
		return fmt.Errorf("ncfile: attribute %q has invalid type %v", a.Name, a.Type)
	}
	return nil
}

// recordVar reports whether variable v spans the unlimited dimension.
func (f *File) recordVar(v *Variable) bool {
	return len(v.Dims) > 0 && f.Dims[v.Dims[0]].Unlimited()
}

// elemsPerRecord returns the element count of one record (for record
// variables) or of the whole variable (for fixed ones).
func (f *File) elemsPerRecord(v *Variable) int {
	n := 1
	for i, d := range v.Dims {
		if i == 0 && f.Dims[d].Unlimited() {
			continue
		}
		n *= f.Dims[d].Length
	}
	return n
}

// SetData assigns the full contents of variable varID, row-major. For a
// record variable the length determines (and must agree with) the file's
// record count.
func (f *File) SetData(varID int, data []float64) error {
	if varID < 0 || varID >= len(f.Vars) {
		return fmt.Errorf("ncfile: unknown variable %d", varID)
	}
	v := &f.Vars[varID]
	per := f.elemsPerRecord(v)
	if f.recordVar(v) {
		if per == 0 {
			return fmt.Errorf("ncfile: variable %q has a zero-length fixed dimension", v.Name)
		}
		if len(data)%per != 0 {
			return fmt.Errorf("ncfile: variable %q data length %d not a multiple of record size %d",
				v.Name, len(data), per)
		}
		recs := len(data) / per
		if f.numRecs == 0 {
			f.numRecs = recs
		} else if recs != f.numRecs {
			return fmt.Errorf("ncfile: variable %q implies %d records, file has %d", v.Name, recs, f.numRecs)
		}
	} else if len(data) != per {
		return fmt.Errorf("ncfile: variable %q needs %d values, got %d", v.Name, per, len(data))
	}
	v.data = append([]float64(nil), data...)
	return nil
}

// Data returns a copy of the stored contents of variable varID.
func (f *File) Data(varID int) ([]float64, error) {
	if varID < 0 || varID >= len(f.Vars) {
		return nil, fmt.Errorf("ncfile: unknown variable %d", varID)
	}
	return append([]float64(nil), f.Vars[varID].data...), nil
}

// NumRecords returns the record count along the unlimited dimension.
func (f *File) NumRecords() int { return f.numRecs }

// VarID returns the ID of the named variable.
func (f *File) VarID(name string) (int, error) {
	for i := range f.Vars {
		if f.Vars[i].Name == name {
			return i, nil
		}
	}
	return 0, fmt.Errorf("ncfile: no variable %q", name)
}

// DimID returns the ID of the named dimension.
func (f *File) DimID(name string) (int, error) {
	for i := range f.Dims {
		if f.Dims[i].Name == name {
			return i, nil
		}
	}
	return 0, fmt.Errorf("ncfile: no dimension %q", name)
}

package ncfile

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"os"
)

// File-format tag values.
const (
	tagDimension = 0x0A
	tagVariable  = 0x0B
	tagAttribute = 0x0C
)

const int32Max = math.MaxInt32

// pad4 rounds n up to a multiple of 4, the classic format's alignment unit.
func pad4(n int) int { return (n + 3) &^ 3 }

// layout holds the computed offsets of an encoding pass.
type layout struct {
	version     byte
	headerSize  int64
	varBegin    []int64
	varVsize    []int64 // padded external size (per record for record vars)
	recSize     int64   // stride between consecutive records
	recordStart int64
	fileSize    int64
}

func nameSize(name string) int { return 4 + pad4(len(name)) }

func attrSize(a Attribute) int {
	n := nameSize(a.Name) + 4 + 4 // name, type, nelems
	if a.Type == Char {
		n += pad4(len(a.Text))
	} else {
		n += pad4(len(a.Values) * a.Type.Size())
	}
	return n
}

func attrListSize(attrs []Attribute) int {
	n := 8 // tag + nelems (ABSENT when empty)
	for _, a := range attrs {
		n += attrSize(a)
	}
	return n
}

// computeLayout determines offsets for the given offset width (version 1
// uses 4-byte begins, version 2 uses 8-byte begins).
func (f *File) computeLayout(version byte) (*layout, error) {
	l := &layout{version: version}
	beginWidth := 4
	if version == 2 {
		beginWidth = 8
	}

	h := int64(4 + 4) // magic + numrecs
	h += 8            // dim_list tag + nelems
	for _, d := range f.Dims {
		h += int64(nameSize(d.Name)) + 4
	}
	h += int64(attrListSize(f.GlobalAttrs))
	h += 8 // var_list tag + nelems
	for i := range f.Vars {
		v := &f.Vars[i]
		h += int64(nameSize(v.Name))
		h += 4 + int64(4*len(v.Dims)) // ndims + dimids
		h += int64(attrListSize(v.Attrs))
		h += 4 + 4 + int64(beginWidth) // nc_type + vsize + begin
	}
	l.headerSize = h

	l.varBegin = make([]int64, len(f.Vars))
	l.varVsize = make([]int64, len(f.Vars))

	// Single-record-variable exception: when exactly one record variable
	// exists and it is byte/char/short, records are packed without padding.
	var recVars []int
	for i := range f.Vars {
		if f.recordVar(&f.Vars[i]) {
			recVars = append(recVars, i)
		}
	}
	packException := len(recVars) == 1 && f.Vars[recVars[0]].Type.Size() < 4

	for i := range f.Vars {
		v := &f.Vars[i]
		raw := int64(f.elemsPerRecord(v)) * int64(v.Type.Size())
		sz := int64(pad4(int(raw)))
		if packException && f.recordVar(v) {
			sz = raw
		}
		if sz > int32Max {
			return nil, fmt.Errorf("ncfile: variable %q slab of %d bytes exceeds classic-format limit", v.Name, sz)
		}
		l.varVsize[i] = sz
	}

	// Fixed variables first, in definition order.
	off := l.headerSize
	for i := range f.Vars {
		if f.recordVar(&f.Vars[i]) {
			continue
		}
		l.varBegin[i] = off
		off += l.varVsize[i]
	}
	l.recordStart = off
	var rec int64
	for _, i := range recVars {
		l.varBegin[i] = l.recordStart + rec
		rec += l.varVsize[i]
	}
	l.recSize = rec
	l.fileSize = l.recordStart + rec*int64(f.numRecs)

	if version == 1 {
		for _, b := range l.varBegin {
			if b > int32Max {
				return nil, fmt.Errorf("ncfile: offsets exceed CDF-1 limits")
			}
		}
	}
	return l, nil
}

// EncodedSize returns the exact size in bytes the file will occupy when
// encoded, without serializing the data. This is how the I/O layer accounts
// for raw-dump sizes cheaply.
func (f *File) EncodedSize() (int64, error) {
	l, err := f.layoutAuto()
	if err != nil {
		return 0, err
	}
	return l.fileSize, nil
}

func (f *File) layoutAuto() (*layout, error) {
	l, err := f.computeLayout(1)
	if err == nil {
		return l, nil
	}
	return f.computeLayout(2)
}

// Encode serializes the dataset in netCDF classic format (CDF-1, or CDF-2
// when offsets demand 64 bits) and returns the number of bytes written.
func (f *File) Encode(w io.Writer) (int64, error) {
	for i := range f.Vars {
		v := &f.Vars[i]
		want := f.elemsPerRecord(v)
		if f.recordVar(v) {
			want *= f.numRecs
		}
		if len(v.data) != want {
			return 0, fmt.Errorf("ncfile: variable %q has %d values, want %d (SetData missing?)",
				v.Name, len(v.data), want)
		}
	}
	l, err := f.layoutAuto()
	if err != nil {
		return 0, err
	}

	var buf bytes.Buffer
	buf.Grow(int(l.fileSize))
	be := binary.BigEndian

	putI32 := func(v int32) {
		var b [4]byte
		be.PutUint32(b[:], uint32(v))
		buf.Write(b[:])
	}
	putName := func(s string) {
		putI32(int32(len(s)))
		buf.WriteString(s)
		for p := len(s); p%4 != 0; p++ {
			buf.WriteByte(0)
		}
	}
	putAttr := func(a Attribute) error {
		putName(a.Name)
		putI32(int32(a.Type))
		if a.Type == Char {
			putI32(int32(len(a.Text)))
			buf.WriteString(a.Text)
			for p := len(a.Text); p%4 != 0; p++ {
				buf.WriteByte(0)
			}
			return nil
		}
		putI32(int32(len(a.Values)))
		start := buf.Len()
		for _, v := range a.Values {
			if err := putValue(&buf, a.Type, v); err != nil {
				return fmt.Errorf("attribute %q: %w", a.Name, err)
			}
		}
		for p := buf.Len() - start; p%4 != 0; p++ {
			buf.WriteByte(0)
		}
		return nil
	}
	putAttrList := func(attrs []Attribute) error {
		if len(attrs) == 0 {
			putI32(0)
			putI32(0)
			return nil
		}
		putI32(tagAttribute)
		putI32(int32(len(attrs)))
		for _, a := range attrs {
			if err := putAttr(a); err != nil {
				return err
			}
		}
		return nil
	}

	buf.WriteString("CDF")
	buf.WriteByte(l.version)
	putI32(int32(f.numRecs))

	if len(f.Dims) == 0 {
		putI32(0)
		putI32(0)
	} else {
		putI32(tagDimension)
		putI32(int32(len(f.Dims)))
		for _, d := range f.Dims {
			putName(d.Name)
			putI32(int32(d.Length))
		}
	}
	if err := putAttrList(f.GlobalAttrs); err != nil {
		return 0, err
	}
	if len(f.Vars) == 0 {
		putI32(0)
		putI32(0)
	} else {
		putI32(tagVariable)
		putI32(int32(len(f.Vars)))
		for i := range f.Vars {
			v := &f.Vars[i]
			putName(v.Name)
			putI32(int32(len(v.Dims)))
			for _, d := range v.Dims {
				putI32(int32(d))
			}
			if err := putAttrList(v.Attrs); err != nil {
				return 0, err
			}
			putI32(int32(v.Type))
			putI32(int32(l.varVsize[i]))
			if l.version == 1 {
				putI32(int32(l.varBegin[i]))
			} else {
				var b [8]byte
				be.PutUint64(b[:], uint64(l.varBegin[i]))
				buf.Write(b[:])
			}
		}
	}
	if int64(buf.Len()) != l.headerSize {
		return 0, fmt.Errorf("ncfile: internal error: header is %d bytes, computed %d", buf.Len(), l.headerSize)
	}

	// Fixed variable data.
	for i := range f.Vars {
		v := &f.Vars[i]
		if f.recordVar(v) {
			continue
		}
		start := buf.Len()
		for _, val := range v.data {
			if err := putValue(&buf, v.Type, val); err != nil {
				return 0, fmt.Errorf("variable %q: %w", v.Name, err)
			}
		}
		for p := buf.Len() - start; int64(p) < l.varVsize[i]; p++ {
			buf.WriteByte(0)
		}
	}
	// Record data, interleaved per record.
	for r := 0; r < f.numRecs; r++ {
		for i := range f.Vars {
			v := &f.Vars[i]
			if !f.recordVar(v) {
				continue
			}
			per := f.elemsPerRecord(v)
			start := buf.Len()
			for _, val := range v.data[r*per : (r+1)*per] {
				if err := putValue(&buf, v.Type, val); err != nil {
					return 0, fmt.Errorf("variable %q: %w", v.Name, err)
				}
			}
			for p := buf.Len() - start; int64(p) < l.varVsize[i]; p++ {
				buf.WriteByte(0)
			}
		}
	}
	if int64(buf.Len()) != l.fileSize {
		return 0, fmt.Errorf("ncfile: internal error: wrote %d bytes, computed %d", buf.Len(), l.fileSize)
	}
	n, err := w.Write(buf.Bytes())
	return int64(n), err
}

// putValue appends one big-endian external value.
func putValue(buf *bytes.Buffer, t Type, v float64) error {
	be := binary.BigEndian
	switch t {
	case Short:
		r := math.Round(v)
		if r < math.MinInt16 || r > math.MaxInt16 {
			return fmt.Errorf("ncfile: value %g out of NC_SHORT range", v)
		}
		var b [2]byte
		be.PutUint16(b[:], uint16(int16(r)))
		buf.Write(b[:])
	case Int:
		r := math.Round(v)
		if r < math.MinInt32 || r > math.MaxInt32 {
			return fmt.Errorf("ncfile: value %g out of NC_INT range", v)
		}
		var b [4]byte
		be.PutUint32(b[:], uint32(int32(r)))
		buf.Write(b[:])
	case Float:
		var b [4]byte
		be.PutUint32(b[:], math.Float32bits(float32(v)))
		buf.Write(b[:])
	case Double:
		var b [8]byte
		be.PutUint64(b[:], math.Float64bits(v))
		buf.Write(b[:])
	case Byte:
		r := math.Round(v)
		if r < math.MinInt8 || r > math.MaxInt8 {
			return fmt.Errorf("ncfile: value %g out of NC_BYTE range", v)
		}
		buf.WriteByte(byte(int8(r)))
	default:
		return fmt.Errorf("ncfile: cannot encode type %v", t)
	}
	return nil
}

// WriteFile encodes the dataset to the named file and returns its size.
func (f *File) WriteFile(path string) (int64, error) {
	out, err := os.Create(path)
	if err != nil {
		return 0, fmt.Errorf("ncfile: %w", err)
	}
	n, err := f.Encode(out)
	if cerr := out.Close(); err == nil {
		err = cerr
	}
	return n, err
}

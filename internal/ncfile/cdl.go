package ncfile

import (
	"fmt"
	"strings"
)

// DumpCDL renders the dataset's header in CDL, the textual notation
// `ncdump -h` produces, so dumps written by the pipelines can be inspected
// without netCDF tooling.
func DumpCDL(f *File, name string) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "netcdf %s {\n", name)

	if len(f.Dims) > 0 {
		sb.WriteString("dimensions:\n")
		for _, d := range f.Dims {
			if d.Unlimited() {
				fmt.Fprintf(&sb, "\t%s = UNLIMITED ; // (%d currently)\n", d.Name, f.NumRecords())
			} else {
				fmt.Fprintf(&sb, "\t%s = %d ;\n", d.Name, d.Length)
			}
		}
	}

	if len(f.Vars) > 0 {
		sb.WriteString("variables:\n")
		for _, v := range f.Vars {
			dims := make([]string, len(v.Dims))
			for i, di := range v.Dims {
				dims[i] = f.Dims[di].Name
			}
			fmt.Fprintf(&sb, "\t%s %s(%s) ;\n", cdlType(v.Type), v.Name, strings.Join(dims, ", "))
			for _, a := range v.Attrs {
				fmt.Fprintf(&sb, "\t\t%s:%s = %s ;\n", v.Name, a.Name, cdlValue(a))
			}
		}
	}

	if len(f.GlobalAttrs) > 0 {
		sb.WriteString("\n// global attributes:\n")
		for _, a := range f.GlobalAttrs {
			fmt.Fprintf(&sb, "\t\t:%s = %s ;\n", a.Name, cdlValue(a))
		}
	}
	sb.WriteString("}\n")
	return sb.String()
}

func cdlType(t Type) string {
	switch t {
	case Byte:
		return "byte"
	case Char:
		return "char"
	case Short:
		return "short"
	case Int:
		return "int"
	case Float:
		return "float"
	case Double:
		return "double"
	}
	return "unknown"
}

func cdlValue(a Attribute) string {
	if a.Type == Char {
		return fmt.Sprintf("%q", a.Text)
	}
	parts := make([]string, len(a.Values))
	for i, v := range a.Values {
		switch a.Type {
		case Float:
			parts[i] = fmt.Sprintf("%gf", v)
		case Double:
			parts[i] = fmt.Sprintf("%g", v)
		default:
			parts[i] = fmt.Sprintf("%d", int64(v))
		}
	}
	return strings.Join(parts, ", ")
}

package ncfile

import (
	"encoding/binary"
	"fmt"
	"math"
	"os"
)

// decoder walks a classic-format byte slice.
type decoder struct {
	data []byte
	pos  int
}

func (d *decoder) need(n int) error {
	if d.pos+n > len(d.data) {
		return fmt.Errorf("%w: truncated at offset %d (need %d bytes)", ErrFormat, d.pos, n)
	}
	return nil
}

func (d *decoder) u32() (uint32, error) {
	if err := d.need(4); err != nil {
		return 0, err
	}
	v := binary.BigEndian.Uint32(d.data[d.pos:])
	d.pos += 4
	return v, nil
}

func (d *decoder) i32() (int32, error) {
	v, err := d.u32()
	return int32(v), err
}

func (d *decoder) name() (string, error) {
	n, err := d.i32()
	if err != nil {
		return "", err
	}
	if n < 0 || n > 1<<20 {
		return "", fmt.Errorf("%w: implausible name length %d", ErrFormat, n)
	}
	padded := pad4(int(n))
	if err := d.need(padded); err != nil {
		return "", err
	}
	s := string(d.data[d.pos : d.pos+int(n)])
	d.pos += padded
	return s, nil
}

func (d *decoder) attrList() ([]Attribute, error) {
	tag, err := d.i32()
	if err != nil {
		return nil, err
	}
	count, err := d.i32()
	if err != nil {
		return nil, err
	}
	if tag == 0 && count == 0 {
		return nil, nil
	}
	if tag != tagAttribute || count < 0 {
		return nil, fmt.Errorf("%w: bad attribute list header (tag %d, count %d)", ErrFormat, tag, count)
	}
	// count is untrusted; cap the initial allocation and let append grow.
	capHint := count
	if capHint > 1024 {
		capHint = 1024
	}
	attrs := make([]Attribute, 0, capHint)
	for i := int32(0); i < count; i++ {
		name, err := d.name()
		if err != nil {
			return nil, err
		}
		t32, err := d.i32()
		if err != nil {
			return nil, err
		}
		t := Type(t32)
		nelems, err := d.i32()
		if err != nil {
			return nil, err
		}
		if nelems < 0 {
			return nil, fmt.Errorf("%w: negative attribute length", ErrFormat)
		}
		a := Attribute{Name: name, Type: t}
		if t == Char {
			padded := pad4(int(nelems))
			if err := d.need(padded); err != nil {
				return nil, err
			}
			a.Text = string(d.data[d.pos : d.pos+int(nelems)])
			d.pos += padded
		} else {
			sz := t.Size()
			if sz == 0 {
				return nil, fmt.Errorf("%w: attribute %q has invalid type %d", ErrFormat, name, t32)
			}
			padded := pad4(int(nelems) * sz)
			if err := d.need(padded); err != nil {
				return nil, err
			}
			a.Values = make([]float64, nelems)
			for k := range a.Values {
				a.Values[k] = getValue(d.data[d.pos+k*sz:], t)
			}
			d.pos += padded
		}
		attrs = append(attrs, a)
	}
	return attrs, nil
}

// getValue decodes one big-endian external value starting at b[0].
func getValue(b []byte, t Type) float64 {
	be := binary.BigEndian
	switch t {
	case Byte:
		return float64(int8(b[0]))
	case Short:
		return float64(int16(be.Uint16(b)))
	case Int:
		return float64(int32(be.Uint32(b)))
	case Float:
		return float64(math.Float32frombits(be.Uint32(b)))
	case Double:
		return math.Float64frombits(be.Uint64(b))
	}
	return math.NaN()
}

// Decode parses a netCDF classic (CDF-1 or CDF-2) byte image, including all
// variable data.
func Decode(data []byte) (*File, error) {
	d := &decoder{data: data}
	if err := d.need(4); err != nil {
		return nil, err
	}
	if string(data[0:3]) != "CDF" {
		return nil, fmt.Errorf("%w: bad magic %q", ErrFormat, data[0:3])
	}
	version := data[3]
	if version != 1 && version != 2 {
		return nil, fmt.Errorf("%w: unsupported version %d", ErrFormat, version)
	}
	d.pos = 4

	f := New()
	numRecs, err := d.i32()
	if err != nil {
		return nil, err
	}
	if numRecs < 0 {
		return nil, fmt.Errorf("%w: streaming record count not supported", ErrFormat)
	}
	f.numRecs = int(numRecs)

	// Dimensions.
	tag, err := d.i32()
	if err != nil {
		return nil, err
	}
	count, err := d.i32()
	if err != nil {
		return nil, err
	}
	switch {
	case tag == 0 && count == 0:
	case tag == tagDimension && count >= 0:
		for i := int32(0); i < count; i++ {
			name, err := d.name()
			if err != nil {
				return nil, err
			}
			length, err := d.i32()
			if err != nil {
				return nil, err
			}
			if length < 0 {
				return nil, fmt.Errorf("%w: negative dimension length", ErrFormat)
			}
			f.Dims = append(f.Dims, Dimension{Name: name, Length: int(length)})
		}
	default:
		return nil, fmt.Errorf("%w: bad dimension list header (tag %d)", ErrFormat, tag)
	}

	if f.GlobalAttrs, err = d.attrList(); err != nil {
		return nil, err
	}

	// Variables.
	tag, err = d.i32()
	if err != nil {
		return nil, err
	}
	count, err = d.i32()
	if err != nil {
		return nil, err
	}
	type varMeta struct {
		begin int64
		vsize int64
	}
	var metas []varMeta
	switch {
	case tag == 0 && count == 0:
	case tag == tagVariable && count >= 0:
		for i := int32(0); i < count; i++ {
			name, err := d.name()
			if err != nil {
				return nil, err
			}
			ndims, err := d.i32()
			if err != nil {
				return nil, err
			}
			if ndims < 0 || ndims > 1024 {
				return nil, fmt.Errorf("%w: implausible rank %d for %q", ErrFormat, ndims, name)
			}
			dims := make([]int, ndims)
			for k := range dims {
				id, err := d.i32()
				if err != nil {
					return nil, err
				}
				if id < 0 || int(id) >= len(f.Dims) {
					return nil, fmt.Errorf("%w: variable %q references dimension %d of %d", ErrFormat, name, id, len(f.Dims))
				}
				dims[k] = int(id)
			}
			attrs, err := d.attrList()
			if err != nil {
				return nil, err
			}
			t32, err := d.i32()
			if err != nil {
				return nil, err
			}
			vsize, err := d.i32()
			if err != nil {
				return nil, err
			}
			var begin int64
			if version == 1 {
				b, err := d.i32()
				if err != nil {
					return nil, err
				}
				begin = int64(b)
			} else {
				if err := d.need(8); err != nil {
					return nil, err
				}
				begin = int64(binary.BigEndian.Uint64(d.data[d.pos:]))
				d.pos += 8
			}
			t := Type(t32)
			if !t.validForVariable() {
				return nil, fmt.Errorf("%w: variable %q has unsupported type %v", ErrFormat, name, t)
			}
			f.Vars = append(f.Vars, Variable{Name: name, Type: t, Dims: dims, Attrs: attrs})
			metas = append(metas, varMeta{begin: begin, vsize: int64(vsize)})
		}
	default:
		return nil, fmt.Errorf("%w: bad variable list header (tag %d)", ErrFormat, tag)
	}

	// Record stride = sum of record variables' vsizes (single-small-var
	// packing exception handled implicitly because that vsize is unpadded).
	var recSize int64
	hasRecordVars := false
	for i := range f.Vars {
		if f.recordVar(&f.Vars[i]) {
			hasRecordVars = true
			recSize += metas[i].vsize
		}
	}
	// Untrusted record counts: the records must physically fit in the file.
	if hasRecordVars && f.numRecs > 0 {
		if recSize <= 0 {
			return nil, fmt.Errorf("%w: %d records with non-positive record size", ErrFormat, f.numRecs)
		}
		if int64(f.numRecs) > int64(len(data))/recSize+1 {
			return nil, fmt.Errorf("%w: record count %d exceeds the file", ErrFormat, f.numRecs)
		}
	}

	for i := range f.Vars {
		v := &f.Vars[i]
		// The header is untrusted: compute the element count with overflow
		// checks and verify every slab lies inside the file BEFORE
		// allocating, so corrupt dimension lengths cannot drive huge
		// allocations.
		per, err := checkedElems(f, v, len(data))
		if err != nil {
			return nil, err
		}
		sz := v.Type.Size()
		slab := int64(per) * int64(sz)
		if f.recordVar(v) {
			total := int64(per) * int64(f.numRecs)
			if f.numRecs > 0 && total/int64(f.numRecs) != int64(per) {
				return nil, fmt.Errorf("%w: variable %q record count overflows", ErrFormat, v.Name)
			}
			if total*8 > 8*int64(len(data))+int64(len(data)) {
				return nil, fmt.Errorf("%w: variable %q larger than file", ErrFormat, v.Name)
			}
			if per == 0 {
				v.data = nil
				continue
			}
			for r := 0; r < f.numRecs; r++ {
				base := metas[i].begin + int64(r)*recSize
				if base < 0 || slab < 0 || base+slab > int64(len(data)) {
					return nil, fmt.Errorf("%w: record %d of %q outside file", ErrFormat, r, v.Name)
				}
			}
			v.data = make([]float64, total)
			for r := 0; r < f.numRecs; r++ {
				base := metas[i].begin + int64(r)*recSize
				for k := 0; k < per; k++ {
					v.data[r*per+k] = getValue(data[base+int64(k*sz):], v.Type)
				}
			}
		} else {
			base := metas[i].begin
			if base < 0 || slab < 0 || base+slab > int64(len(data)) {
				return nil, fmt.Errorf("%w: data of %q outside file", ErrFormat, v.Name)
			}
			v.data = make([]float64, per)
			for k := 0; k < per; k++ {
				v.data[k] = getValue(data[base+int64(k*sz):], v.Type)
			}
		}
	}
	return f, nil
}

// ReadFile decodes the named netCDF file.
func ReadFile(path string) (*File, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("ncfile: %w", err)
	}
	return Decode(data)
}

// checkedElems computes a variable's per-record element count from
// untrusted dimension lengths, rejecting products that overflow or that
// could not possibly fit in a file of fileSize bytes.
func checkedElems(f *File, v *Variable, fileSize int) (int, error) {
	per := 1
	for i, d := range v.Dims {
		if i == 0 && f.Dims[d].Unlimited() {
			continue
		}
		length := f.Dims[d].Length
		if length < 0 {
			return 0, fmt.Errorf("%w: negative dimension in %q", ErrFormat, v.Name)
		}
		if length > 0 && per > (1<<62)/length {
			return 0, fmt.Errorf("%w: variable %q size overflows", ErrFormat, v.Name)
		}
		per *= length
	}
	sz := v.Type.Size()
	if sz == 0 {
		return 0, fmt.Errorf("%w: variable %q has no element size", ErrFormat, v.Name)
	}
	if int64(per)*int64(sz) > int64(fileSize) {
		return 0, fmt.Errorf("%w: variable %q (%d elements) exceeds the file", ErrFormat, v.Name, per)
	}
	return per, nil
}

package ncfile

import (
	"bytes"
	"errors"
	"math"
	"math/rand"
	"path/filepath"
	"strings"
	"testing"
	"testing/quick"
)

// buildSample constructs a dataset resembling an MPAS-O Okubo-Weiss dump:
// a fixed coordinate variable plus a record variable over time.
func buildSample(t testing.TB, nCells, nRecs int) *File {
	t.Helper()
	f := New()
	timeDim, err := f.AddDimension("Time", 0)
	if err != nil {
		t.Fatal(err)
	}
	cellDim, err := f.AddDimension("nCells", nCells)
	if err != nil {
		t.Fatal(err)
	}
	if err := f.AddGlobalAttribute(TextAttribute("title", "MPAS-O Okubo-Weiss dump")); err != nil {
		t.Fatal(err)
	}
	if err := f.AddGlobalAttribute(NumericAttribute("grid_km", Int, 60)); err != nil {
		t.Fatal(err)
	}
	latID, err := f.AddVariable("latCell", Double, []int{cellDim})
	if err != nil {
		t.Fatal(err)
	}
	owID, err := f.AddVariable("okuboWeiss", Double, []int{timeDim, cellDim})
	if err != nil {
		t.Fatal(err)
	}
	if err := f.AddVariableAttribute(owID, TextAttribute("units", "s-2")); err != nil {
		t.Fatal(err)
	}
	if err := f.AddVariableAttribute(owID, NumericAttribute("threshold", Double, -0.2)); err != nil {
		t.Fatal(err)
	}
	lat := make([]float64, nCells)
	for i := range lat {
		lat[i] = -1.5 + 3*float64(i)/float64(nCells)
	}
	if err := f.SetData(latID, lat); err != nil {
		t.Fatal(err)
	}
	ow := make([]float64, nCells*nRecs)
	rng := rand.New(rand.NewSource(5))
	for i := range ow {
		ow[i] = rng.NormFloat64() * 1e-10
	}
	if err := f.SetData(owID, ow); err != nil {
		t.Fatal(err)
	}
	return f
}

func TestTypeSizes(t *testing.T) {
	cases := map[Type]int{Byte: 1, Char: 1, Short: 2, Int: 4, Float: 4, Double: 8, Type(99): 0}
	for ty, want := range cases {
		if got := ty.Size(); got != want {
			t.Errorf("%v.Size() = %d, want %d", ty, got, want)
		}
	}
	if Double.String() != "NC_DOUBLE" || Type(99).String() == "" {
		t.Error("type names wrong")
	}
}

func TestDefinitionValidation(t *testing.T) {
	f := New()
	if _, err := f.AddDimension("", 3); err == nil {
		t.Error("empty dim name accepted")
	}
	if _, err := f.AddDimension("x", -1); err == nil {
		t.Error("negative dim accepted")
	}
	if _, err := f.AddDimension("x", 3); err != nil {
		t.Fatal(err)
	}
	if _, err := f.AddDimension("x", 4); err == nil {
		t.Error("duplicate dim accepted")
	}
	if _, err := f.AddDimension("t", 0); err != nil {
		t.Fatal(err)
	}
	if _, err := f.AddDimension("t2", 0); err == nil {
		t.Error("second unlimited dim accepted")
	}

	if _, err := f.AddVariable("", Double, nil); err == nil {
		t.Error("empty var name accepted")
	}
	if _, err := f.AddVariable("v", Char, nil); err == nil {
		t.Error("char variable accepted")
	}
	if _, err := f.AddVariable("v", Double, []int{9}); err == nil {
		t.Error("unknown dim accepted")
	}
	tID, _ := f.DimID("t")
	xID, _ := f.DimID("x")
	if _, err := f.AddVariable("v", Double, []int{xID, tID}); err == nil {
		t.Error("record dim in non-leading position accepted")
	}
	if _, err := f.AddVariable("v", Double, []int{tID, xID}); err != nil {
		t.Fatal(err)
	}
	if _, err := f.AddVariable("v", Double, nil); err == nil {
		t.Error("duplicate var accepted")
	}

	if err := f.AddGlobalAttribute(Attribute{Name: "", Type: Char}); err == nil {
		t.Error("empty attr name accepted")
	}
	if err := f.AddGlobalAttribute(Attribute{Name: "a", Type: Int}); err == nil {
		t.Error("numeric attr without values accepted")
	}
	if err := f.AddGlobalAttribute(Attribute{Name: "a", Type: Char, Values: []float64{1}}); err == nil {
		t.Error("char attr with numeric values accepted")
	}
	if err := f.AddGlobalAttribute(Attribute{Name: "a", Type: Type(42), Values: []float64{1}}); err == nil {
		t.Error("bad attr type accepted")
	}
	if err := f.AddVariableAttribute(99, TextAttribute("a", "b")); err == nil {
		t.Error("attr on unknown var accepted")
	}
}

func TestSetDataValidation(t *testing.T) {
	f := New()
	tDim, _ := f.AddDimension("t", 0)
	xDim, _ := f.AddDimension("x", 4)
	fixed, _ := f.AddVariable("fixed", Double, []int{xDim})
	rec, _ := f.AddVariable("rec", Double, []int{tDim, xDim})
	rec2, _ := f.AddVariable("rec2", Float, []int{tDim, xDim})

	if err := f.SetData(99, nil); err == nil {
		t.Error("unknown var accepted")
	}
	if err := f.SetData(fixed, make([]float64, 3)); err == nil {
		t.Error("wrong fixed length accepted")
	}
	if err := f.SetData(rec, make([]float64, 7)); err == nil {
		t.Error("non-multiple record length accepted")
	}
	if err := f.SetData(rec, make([]float64, 12)); err != nil { // 3 records
		t.Fatal(err)
	}
	if f.NumRecords() != 3 {
		t.Errorf("NumRecords = %d, want 3", f.NumRecords())
	}
	if err := f.SetData(rec2, make([]float64, 8)); err == nil {
		t.Error("inconsistent record count accepted")
	}
	if err := f.SetData(rec2, make([]float64, 12)); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Data(99); err == nil {
		t.Error("Data on unknown var accepted")
	}
}

func TestEncodeRequiresData(t *testing.T) {
	f := New()
	xDim, _ := f.AddDimension("x", 4)
	f.AddVariable("v", Double, []int{xDim})
	var buf bytes.Buffer
	if _, err := f.Encode(&buf); err == nil {
		t.Error("encode without data accepted")
	}
}

func TestRoundTrip(t *testing.T) {
	f := buildSample(t, 17, 3)
	var buf bytes.Buffer
	n, err := f.Encode(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if int64(buf.Len()) != n {
		t.Fatalf("Encode returned %d, wrote %d", n, buf.Len())
	}
	want, err := f.EncodedSize()
	if err != nil {
		t.Fatal(err)
	}
	if n != want {
		t.Fatalf("EncodedSize = %d, actual = %d", want, n)
	}
	// The file must carry the classic magic.
	if string(buf.Bytes()[0:3]) != "CDF" || buf.Bytes()[3] != 1 {
		t.Fatalf("magic = % x", buf.Bytes()[:4])
	}

	g, err := Decode(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if len(g.Dims) != 2 || g.Dims[0].Name != "Time" || !g.Dims[0].Unlimited() || g.Dims[1].Length != 17 {
		t.Fatalf("dims = %+v", g.Dims)
	}
	if g.NumRecords() != 3 {
		t.Fatalf("records = %d", g.NumRecords())
	}
	if len(g.GlobalAttrs) != 2 || g.GlobalAttrs[0].Text != "MPAS-O Okubo-Weiss dump" {
		t.Fatalf("gatts = %+v", g.GlobalAttrs)
	}
	if g.GlobalAttrs[1].Values[0] != 60 {
		t.Fatalf("grid_km = %v", g.GlobalAttrs[1].Values)
	}
	owIn, _ := f.VarID("okuboWeiss")
	owOut, err := g.VarID("okuboWeiss")
	if err != nil {
		t.Fatal(err)
	}
	wantData, _ := f.Data(owIn)
	gotData, _ := g.Data(owOut)
	if len(gotData) != len(wantData) {
		t.Fatalf("data length %d, want %d", len(gotData), len(wantData))
	}
	for i := range wantData {
		if gotData[i] != wantData[i] {
			t.Fatalf("double data differs at %d: %g vs %g", i, gotData[i], wantData[i])
		}
	}
	if len(g.Vars[owOut].Attrs) != 2 || g.Vars[owOut].Attrs[0].Text != "s-2" {
		t.Fatalf("var attrs = %+v", g.Vars[owOut].Attrs)
	}
	if g.Vars[owOut].Attrs[1].Values[0] != -0.2 {
		t.Fatalf("threshold attr = %v", g.Vars[owOut].Attrs[1].Values)
	}
}

func TestRoundTripAllTypes(t *testing.T) {
	f := New()
	xDim, _ := f.AddDimension("x", 5)
	vals := []float64{-3, 0, 1, 2, 7}
	ids := map[Type]int{}
	for _, ty := range []Type{Short, Int, Float, Double} {
		id, err := f.AddVariable("v_"+ty.String(), ty, []int{xDim})
		if err != nil {
			t.Fatal(err)
		}
		if err := f.SetData(id, vals); err != nil {
			t.Fatal(err)
		}
		ids[ty] = id
	}
	var buf bytes.Buffer
	if _, err := f.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	g, err := Decode(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	for ty, id := range ids {
		got, err := g.Data(id)
		if err != nil {
			t.Fatal(err)
		}
		for i := range vals {
			if got[i] != vals[i] {
				t.Errorf("%v: data[%d] = %g, want %g", ty, i, got[i], vals[i])
			}
		}
	}
	// Short data (2 bytes x 5 = 10) must be padded to 12 inside the file;
	// the next variable must still decode correctly — covered above.
}

func TestFloatPrecisionLoss(t *testing.T) {
	f := New()
	xDim, _ := f.AddDimension("x", 1)
	id, _ := f.AddVariable("v", Float, []int{xDim})
	pi := math.Pi
	f.SetData(id, []float64{pi})
	var buf bytes.Buffer
	if _, err := f.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	g, err := Decode(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	got, _ := g.Data(0)
	if got[0] == pi {
		t.Error("float32 round trip preserved full float64 precision, suspicious")
	}
	if math.Abs(got[0]-pi) > 1e-6 {
		t.Errorf("float32 round trip error too large: %g", got[0]-pi)
	}
}

func TestRangeErrors(t *testing.T) {
	f := New()
	xDim, _ := f.AddDimension("x", 1)
	id, _ := f.AddVariable("v", Short, []int{xDim})
	f.SetData(id, []float64{1e9})
	var buf bytes.Buffer
	if _, err := f.Encode(&buf); err == nil {
		t.Error("out-of-range short accepted")
	}
	g := New()
	yDim, _ := g.AddDimension("y", 1)
	gid, _ := g.AddVariable("v", Int, []int{yDim})
	g.SetData(gid, []float64{1e18})
	buf.Reset()
	if _, err := g.Encode(&buf); err == nil {
		t.Error("out-of-range int accepted")
	}
}

func TestWriteReadFile(t *testing.T) {
	f := buildSample(t, 9, 2)
	path := filepath.Join(t.TempDir(), "sample.nc")
	n, err := f.WriteFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if n <= 0 {
		t.Fatalf("wrote %d bytes", n)
	}
	g, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumRecords() != 2 {
		t.Errorf("records = %d", g.NumRecords())
	}
	if _, err := ReadFile(filepath.Join(t.TempDir(), "missing.nc")); err == nil {
		t.Error("missing file accepted")
	}
}

func TestDecodeRejectsGarbage(t *testing.T) {
	cases := [][]byte{
		nil,
		[]byte("CD"),
		[]byte("XDF\x01\x00\x00\x00\x00"),
		[]byte("CDF\x03\x00\x00\x00\x00"),
		[]byte("CDF\x01\x00\x00\x00"), // truncated numrecs
		[]byte("CDF\x01\xff\xff\xff\xff\x00\x00\x00\x00\x00\x00\x00\x00"), // streaming numrecs
	}
	for i, c := range cases {
		if _, err := Decode(c); err == nil {
			t.Errorf("case %d: garbage accepted", i)
		} else if len(c) >= 4 && !errors.Is(err, ErrFormat) {
			t.Errorf("case %d: err = %v, want ErrFormat", i, err)
		}
	}
}

func TestDecodeTruncatedFile(t *testing.T) {
	f := buildSample(t, 8, 2)
	var buf bytes.Buffer
	if _, err := f.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	// Chopping anywhere must produce an error, never a panic.
	for cut := 4; cut < len(full); cut += 13 {
		if _, err := Decode(full[:cut]); err == nil {
			t.Errorf("truncation at %d accepted", cut)
		}
	}
}

func TestEncodedSizeFormula(t *testing.T) {
	// The encoded size must scale linearly with records at the record
	// slab stride.
	small := buildSample(t, 100, 1)
	big := buildSample(t, 100, 11)
	s1, err := small.EncodedSize()
	if err != nil {
		t.Fatal(err)
	}
	s11, err := big.EncodedSize()
	if err != nil {
		t.Fatal(err)
	}
	perRecord := int64(100 * 8) // one double per cell
	if s11-s1 != 10*perRecord {
		t.Errorf("size grew by %d over 10 records, want %d", s11-s1, 10*perRecord)
	}
}

func TestRoundTripProperty(t *testing.T) {
	f := func(raw []float64, nRecs uint8) bool {
		recs := int(nRecs%4) + 1
		width := len(raw)
		if width == 0 {
			width = 1
		}
		if width > 32 {
			width = 32
		}
		data := make([]float64, recs*width)
		for i := range data {
			v := 0.0
			if len(raw) > 0 {
				v = raw[i%len(raw)]
			}
			if math.IsNaN(v) || math.IsInf(v, 0) {
				v = 0
			}
			data[i] = v
		}
		nc := New()
		tDim, _ := nc.AddDimension("t", 0)
		xDim, _ := nc.AddDimension("x", width)
		id, _ := nc.AddVariable("v", Double, []int{tDim, xDim})
		if err := nc.SetData(id, data); err != nil {
			return false
		}
		var buf bytes.Buffer
		if _, err := nc.Encode(&buf); err != nil {
			return false
		}
		g, err := Decode(buf.Bytes())
		if err != nil {
			return false
		}
		got, err := g.Data(0)
		if err != nil || len(got) != len(data) {
			return false
		}
		for i := range data {
			if got[i] != data[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func BenchmarkEncode(b *testing.B) {
	f := buildSample(b, 2562, 10)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var buf bytes.Buffer
		if _, err := f.Encode(&buf); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDecode(b *testing.B) {
	f := buildSample(b, 2562, 10)
	var buf bytes.Buffer
	if _, err := f.Encode(&buf); err != nil {
		b.Fatal(err)
	}
	data := buf.Bytes()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Decode(data); err != nil {
			b.Fatal(err)
		}
	}
}

// buildCDF2 hand-crafts a minimal CDF-2 (64-bit offset) file: one fixed
// dimension, one NC_INT variable with an 8-byte begin offset.
func buildCDF2(t *testing.T) []byte {
	t.Helper()
	var buf bytes.Buffer
	put32 := func(v uint32) {
		var b [4]byte
		b[0] = byte(v >> 24)
		b[1] = byte(v >> 16)
		b[2] = byte(v >> 8)
		b[3] = byte(v)
		buf.Write(b[:])
	}
	put64 := func(v uint64) {
		put32(uint32(v >> 32))
		put32(uint32(v))
	}
	buf.WriteString("CDF\x02")
	put32(0)    // numrecs
	put32(0x0A) // NC_DIMENSION
	put32(1)    // one dimension
	put32(1)    // name length "x"
	buf.WriteString("x\x00\x00\x00")
	put32(2) // dim length
	put32(0) // gatt ABSENT
	put32(0)
	put32(0x0B) // NC_VARIABLE
	put32(1)
	put32(1) // name length "v"
	buf.WriteString("v\x00\x00\x00")
	put32(1) // ndims
	put32(0) // dimid 0
	put32(0) // vatt ABSENT
	put32(0)
	put32(4) // nc_type NC_INT
	put32(8) // vsize
	begin := uint64(buf.Len()) + 8
	put64(begin)
	put32(0x00000007) // value 7
	put32(0xFFFFFFFE) // value -2
	return buf.Bytes()
}

func TestDecodeCDF2(t *testing.T) {
	data := buildCDF2(t)
	f, err := Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Dims) != 1 || f.Dims[0].Name != "x" || f.Dims[0].Length != 2 {
		t.Fatalf("dims = %+v", f.Dims)
	}
	id, err := f.VarID("v")
	if err != nil {
		t.Fatal(err)
	}
	vals, err := f.Data(id)
	if err != nil {
		t.Fatal(err)
	}
	if len(vals) != 2 || vals[0] != 7 || vals[1] != -2 {
		t.Fatalf("values = %v", vals)
	}
	// Truncating the 64-bit begin must error cleanly.
	if _, err := Decode(data[:len(data)-12]); err == nil {
		t.Error("truncated CDF-2 accepted")
	}
}

func TestDumpCDL(t *testing.T) {
	f := buildSample(t, 5, 2)
	out := DumpCDL(f, "sample")
	for _, want := range []string{
		"netcdf sample {",
		"Time = UNLIMITED ; // (2 currently)",
		"nCells = 5 ;",
		"double latCell(nCells) ;",
		"double okuboWeiss(Time, nCells) ;",
		`okuboWeiss:units = "s-2" ;`,
		"okuboWeiss:threshold = -0.2 ;",
		`:title = "MPAS-O Okubo-Weiss dump" ;`,
		":grid_km = 60 ;",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("CDL missing %q:\n%s", want, out)
		}
	}
	// Type names cover the variable types.
	g := New()
	xDim, _ := g.AddDimension("x", 1)
	for _, ty := range []Type{Short, Int, Float} {
		id, _ := g.AddVariable("v_"+ty.String(), ty, []int{xDim})
		g.SetData(id, []float64{1})
	}
	g.AddGlobalAttribute(NumericAttribute("fval", Float, 1.5))
	cdl := DumpCDL(g, "types")
	for _, want := range []string{"short v_NC_SHORT(x)", "int v_NC_INT(x)", "float v_NC_FLOAT(x)", ":fval = 1.5f ;"} {
		if !strings.Contains(cdl, want) {
			t.Errorf("CDL missing %q:\n%s", want, cdl)
		}
	}
	if cdlType(Type(99)) != "unknown" || cdlType(Byte) != "byte" || cdlType(Char) != "char" || cdlType(Double) != "double" {
		t.Error("cdlType names wrong")
	}
}

func TestDecodeNeverPanicsOnMutatedFiles(t *testing.T) {
	// Decode must reject — never panic on — arbitrary corruption of a
	// valid file.
	f := buildSample(t, 6, 2)
	var buf bytes.Buffer
	if _, err := f.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	base := buf.Bytes()
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 200; trial++ {
		data := append([]byte(nil), base...)
		// Flip 1-4 random bytes.
		for k := 0; k < 1+rng.Intn(4); k++ {
			data[rng.Intn(len(data))] ^= byte(1 + rng.Intn(255))
		}
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("trial %d: Decode panicked: %v", trial, r)
				}
			}()
			// Either outcome (error or success) is fine; panics are not.
			_, _ = Decode(data)
		}()
	}
}

// Package lustre simulates the study's storage substrate: the private
// five-node Lustre rack attached to the Caddy cluster (one master, two
// metadata servers, two object storage servers, 7.7 TB capacity,
// ~160 MB/s of aggregate bandwidth). The model captures exactly the
// properties the paper's findings rest on:
//
//   - a shared, bandwidth-limited data path (transfers take size/bandwidth
//     of simulated time, and concurrent streams share the pipe), and
//   - an almost completely power-unproportional rack: 2273 W idle versus
//     2302 W at full load, a 1.3% dynamic range — the reason reducing I/O
//     does not reduce storage power (the paper's Finding 2).
//
// Files are striped across OSS targets and metadata operations land on the
// MDS nodes, so capacity and operation counts are attributable per
// component.
package lustre

import (
	"errors"
	"fmt"
	"sort"

	"insituviz/internal/faults"
	"insituviz/internal/power"
	"insituviz/internal/telemetry"
	"insituviz/internal/units"
)

// Config describes a storage rack.
type Config struct {
	Capacity  units.Bytes          // total usable capacity
	Bandwidth units.BytesPerSecond // aggregate sequential bandwidth
	IdlePower units.Watts          // rack power with no I/O in flight
	BusyPower units.Watts          // rack power at full load
	MDSCount  int                  // metadata servers
	OSSCount  int                  // object storage servers
	// StripeCount is the number of OSS objects each file is striped
	// across (clamped to OSSCount).
	StripeCount int
}

// CaddyStorage returns the paper's measured rack configuration.
func CaddyStorage() Config {
	return Config{
		Capacity:    units.Terabytes(7.7),
		Bandwidth:   units.MegabytesPerSecond(160),
		IdlePower:   2273,
		BusyPower:   2302,
		MDSCount:    2,
		OSSCount:    2,
		StripeCount: 2,
	}
}

// RetryPolicy governs how the rack's clients answer injected transient
// data-path failures: capped exponential backoff with deterministic
// jitter, bounded per operation by MaxAttempts and per phase by a shared
// retry budget.
type RetryPolicy struct {
	// MaxAttempts bounds the tries per operation (first try included).
	MaxAttempts int
	// BaseDelay is the backoff before the first retry; attempt k waits
	// min(BaseDelay·2^(k-1), MaxDelay) scaled by a jitter in [0.5, 1).
	BaseDelay units.Seconds
	// MaxDelay caps a single backoff.
	MaxDelay units.Seconds
	// PhaseBudget bounds the total retries between ResetRetryBudget
	// calls; once spent, further transient failures surface immediately.
	PhaseBudget int
}

// DefaultRetryPolicy is the stack's standard answer to transient storage
// faults: four attempts, 50 ms base backoff capped at 2 s, sixteen
// retries per phase.
func DefaultRetryPolicy() RetryPolicy {
	return RetryPolicy{MaxAttempts: 4, BaseDelay: 0.05, MaxDelay: 2, PhaseBudget: 16}
}

// Validate rejects policies that cannot terminate.
func (p RetryPolicy) Validate() error {
	if p.MaxAttempts < 1 {
		return fmt.Errorf("lustre: retry policy needs at least one attempt, got %d", p.MaxAttempts)
	}
	if p.BaseDelay < 0 || p.MaxDelay < p.BaseDelay {
		return fmt.Errorf("lustre: invalid backoff range [%v, %v]", p.BaseDelay, p.MaxDelay)
	}
	if p.PhaseBudget < 0 {
		return fmt.Errorf("lustre: negative retry budget %d", p.PhaseBudget)
	}
	return nil
}

// TransientError is one injected data-path failure. It is what an
// operation reports when retries cannot absorb the fault.
type TransientError struct {
	Op   string // "write" or "read"
	Name string // file name
	Seq  uint64 // the fault's occurrence number at its site
}

func (e *TransientError) Error() string {
	return fmt.Sprintf("lustre: transient %s failure on %q (fault #%d)", e.Op, e.Name, e.Seq)
}

// ErrRetryBudgetExhausted marks failures surfaced because the retry
// policy ran out — either the per-operation attempts or the per-phase
// budget. Match with errors.Is.
var ErrRetryBudgetExhausted = errors.New("lustre: retry budget exhausted")

// BudgetError reports an operation abandoned after the retry policy was
// exhausted. It wraps both ErrRetryBudgetExhausted and the final
// TransientError.
type BudgetError struct {
	Op       string
	Name     string
	Attempts int
	Last     error
}

func (e *BudgetError) Error() string {
	return fmt.Sprintf("lustre: %s %q abandoned after %d attempts: %v", e.Op, e.Name, e.Attempts, e.Last)
}

// Unwrap exposes the sentinel and the final transient failure.
func (e *BudgetError) Unwrap() []error { return []error{ErrRetryBudgetExhausted, e.Last} }

// Stats aggregates the rack's lifetime activity.
type Stats struct {
	BytesWritten units.Bytes
	BytesRead    units.Bytes
	FilesCreated int
	FilesDeleted int
	MetadataOps  int
}

type file struct {
	size    units.Bytes
	stripes []units.Bytes // per-OSS object sizes
}

// Cluster is a simulated Lustre rack. All operations take a simulated
// start time and return the simulated completion time; the rack keeps a
// busy-interval timeline from which its power trace is derived.
type Cluster struct {
	cfg   Config
	used  units.Bytes
	files map[string]file
	stats Stats

	ossUsed []units.Bytes

	// busy is the merged set of intervals during which the data path was
	// active, kept sorted and non-overlapping.
	busy []interval

	// Fault injection (nil without SetFaults; nil handles never fire).
	inj       *faults.Injector
	writeSite *faults.Site
	readSite  *faults.Site
	retry     RetryPolicy
	budget    int // retries remaining in the current phase

	// Metric handles (nil without SetTelemetry; nil handles are no-ops).
	mWritten  *telemetry.Counter
	mRead     *telemetry.Counter
	mFiles    *telemetry.Counter
	mMetaOps  *telemetry.Counter
	mStallMS  *telemetry.Counter
	mXferSize *telemetry.Histogram
	mRetries  *telemetry.Counter
	mFaults   *telemetry.Counter
}

// TransferSizeBuckets are the upper bounds (bytes) of the
// lustre.transfer.bytes histogram, spanning image-sized writes (KB-MB)
// through raw-dump reads and writes (MB-GB).
var TransferSizeBuckets = []float64{
	64 << 10, 1 << 20, 16 << 20, 256 << 20, 1 << 30, 16 << 30,
}

// SetTelemetry registers the rack's metrics in reg: byte counters for
// both data-path directions (lustre.written.bytes, lustre.read.bytes),
// file and metadata operation counts, the lustre.transfer.bytes size
// histogram, and lustre.stall.ms — the cumulative simulated milliseconds
// the shared data path was occupied by transfers, i.e. the I/O stall time
// a compute client pays waiting on the rack. A nil registry detaches the
// instrumentation.
func (c *Cluster) SetTelemetry(reg *telemetry.Registry) {
	c.mWritten = reg.Counter("lustre.written.bytes")
	c.mRead = reg.Counter("lustre.read.bytes")
	c.mFiles = reg.Counter("lustre.files.created")
	c.mMetaOps = reg.Counter("lustre.metadata.ops")
	c.mStallMS = reg.Counter("lustre.stall.ms")
	c.mXferSize = reg.Histogram("lustre.transfer.bytes", TransferSizeBuckets)
	c.mRetries = reg.Counter("lustre.retries")
	c.mFaults = reg.Counter("lustre.faults.injected")
}

// SetFaults arms the rack's fault sites ("lustre.write", "lustre.read")
// against an injector. A nil injector (the default) disarms them; the
// data path then pays only a nil test per operation.
func (c *Cluster) SetFaults(in *faults.Injector) {
	c.inj = in
	c.writeSite = in.Site("lustre.write")
	c.readSite = in.Site("lustre.read")
}

// SetRetry installs the retry policy and refills the phase budget. The
// zero Cluster uses DefaultRetryPolicy.
func (c *Cluster) SetRetry(p RetryPolicy) error {
	if err := p.Validate(); err != nil {
		return err
	}
	c.retry = p
	c.budget = p.PhaseBudget
	return nil
}

// ResetRetryBudget refills the per-phase retry budget; the pipeline calls
// it at each phase boundary so one noisy phase cannot starve the next.
func (c *Cluster) ResetRetryBudget() { c.budget = c.retry.PhaseBudget }

// RetryBudget returns the retries remaining in the current phase.
func (c *Cluster) RetryBudget() int { return c.budget }

// consultFaults runs one operation's fault consult-and-retry loop before
// any rack state changes. It returns the (possibly backoff-delayed)
// start time and any injected stall to add to the transfer duration; a
// non-nil error means the operation must fail with rack state untouched.
func (c *Cluster) consultFaults(site *faults.Site, op, name string, start units.Seconds) (units.Seconds, units.Seconds, error) {
	if site == nil {
		return start, 0, nil
	}
	var stall units.Seconds
	for attempt := 1; ; attempt++ {
		f, ok := site.Next()
		if !ok {
			return start, stall, nil
		}
		c.mFaults.Inc()
		if f.Kind == faults.KindStall {
			// A stall delays the transfer but does not fail it.
			stall += f.Stall
			return start, stall, nil
		}
		last := &TransientError{Op: op, Name: name, Seq: f.Seq}
		if attempt >= c.retry.MaxAttempts || c.budget <= 0 {
			return 0, 0, &BudgetError{Op: op, Name: name, Attempts: attempt, Last: last}
		}
		c.budget--
		c.mRetries.Inc()
		// Capped exponential backoff with deterministic jitter in
		// [0.5, 1), keyed on the failed fault's occurrence so the delay
		// sequence is part of the reproducible run.
		delay := c.retry.BaseDelay * units.Seconds(uint64(1)<<uint(attempt-1))
		if delay > c.retry.MaxDelay {
			delay = c.retry.MaxDelay
		}
		start += delay * units.Seconds(0.5+0.5*c.inj.Uniform("lustre.backoff", f.Seq))
	}
}

// noteTransfer records one data-path transfer in the telemetry stream.
func (c *Cluster) noteTransfer(size units.Bytes, start, end units.Seconds) {
	c.mMetaOps.Inc()
	c.mXferSize.Observe(float64(size))
	c.mStallMS.Add(int64(float64(end-start) * 1e3))
}

type interval struct{ start, end units.Seconds }

// New builds a rack from cfg.
func New(cfg Config) (*Cluster, error) {
	if cfg.Capacity <= 0 {
		return nil, fmt.Errorf("lustre: non-positive capacity %v", cfg.Capacity)
	}
	if cfg.Bandwidth <= 0 {
		return nil, fmt.Errorf("lustre: non-positive bandwidth %v", cfg.Bandwidth)
	}
	if cfg.IdlePower < 0 || cfg.BusyPower < cfg.IdlePower {
		return nil, fmt.Errorf("lustre: invalid power range [%v, %v]", cfg.IdlePower, cfg.BusyPower)
	}
	if cfg.MDSCount < 1 || cfg.OSSCount < 1 {
		return nil, fmt.Errorf("lustre: need at least one MDS and one OSS (%d, %d)", cfg.MDSCount, cfg.OSSCount)
	}
	if cfg.StripeCount < 1 {
		cfg.StripeCount = 1
	}
	if cfg.StripeCount > cfg.OSSCount {
		cfg.StripeCount = cfg.OSSCount
	}
	return &Cluster{
		cfg:     cfg,
		files:   make(map[string]file),
		ossUsed: make([]units.Bytes, cfg.OSSCount),
		retry:   DefaultRetryPolicy(),
		budget:  DefaultRetryPolicy().PhaseBudget,
	}, nil
}

// Config returns the rack configuration.
func (c *Cluster) Config() Config { return c.cfg }

// Used returns the occupied capacity.
func (c *Cluster) Used() units.Bytes { return c.used }

// Free returns the remaining capacity.
func (c *Cluster) Free() units.Bytes { return c.cfg.Capacity - c.used }

// Stats returns the lifetime activity counters.
func (c *Cluster) Stats() Stats { return c.stats }

// FileSize returns the size of a stored file.
func (c *Cluster) FileSize(name string) (units.Bytes, error) {
	f, ok := c.files[name]
	if !ok {
		return 0, fmt.Errorf("lustre: no such file %q", name)
	}
	return f.size, nil
}

// FileCount returns the number of stored files.
func (c *Cluster) FileCount() int { return len(c.files) }

// OSSUsed returns a copy of the per-OSS stripe load.
func (c *Cluster) OSSUsed() []units.Bytes {
	return append([]units.Bytes(nil), c.ossUsed...)
}

// leastLoadedOSS returns the OSS indices to stripe a new file across,
// preferring the emptiest targets (Lustre's default allocator heuristic).
func (c *Cluster) leastLoadedOSS(n int) []int {
	idx := make([]int, len(c.ossUsed))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool {
		if c.ossUsed[idx[a]] != c.ossUsed[idx[b]] {
			return c.ossUsed[idx[a]] < c.ossUsed[idx[b]]
		}
		return idx[a] < idx[b]
	})
	return idx[:n]
}

// Write stores a new file of the given size starting at simulated time
// start, returning the completion time. It fails when the name exists or
// capacity would be exceeded — the failure mode that forces the paper's
// climate scientists to cut their sampling rates — or when injected
// transient faults outlast the retry policy. Every failure path leaves
// the rack unchanged: no used bytes, file entries, OSS load, stats, or
// busy time leak from an abandoned write.
func (c *Cluster) Write(name string, size units.Bytes, start units.Seconds) (units.Seconds, error) {
	if name == "" {
		return 0, fmt.Errorf("lustre: empty file name")
	}
	if size < 0 {
		return 0, fmt.Errorf("lustre: negative size %v", size)
	}
	if start < 0 {
		return 0, fmt.Errorf("lustre: negative start time %v", start)
	}
	if _, exists := c.files[name]; exists {
		return 0, fmt.Errorf("lustre: file %q already exists", name)
	}
	if c.used+size > c.cfg.Capacity {
		return 0, fmt.Errorf("lustre: out of space writing %q: need %v, free %v", name, size, c.Free())
	}

	// Plan the stripe layout locally and consult the fault sites before
	// mutating anything, so an abandoned write commits nothing.
	stripes := make([]units.Bytes, c.cfg.StripeCount)
	targets := c.leastLoadedOSS(c.cfg.StripeCount)
	per := size / units.Bytes(c.cfg.StripeCount)
	rem := size - per*units.Bytes(c.cfg.StripeCount)
	for i := range stripes {
		stripes[i] = per
		if units.Bytes(i) < rem {
			stripes[i]++
		}
	}
	start, stall, err := c.consultFaults(c.writeSite, "write", name, start)
	if err != nil {
		return 0, err
	}

	for i := range stripes {
		c.ossUsed[targets[i]] += stripes[i]
	}
	c.files[name] = file{size: size, stripes: stripes}
	c.used += size
	c.stats.BytesWritten += size
	c.stats.FilesCreated++
	c.stats.MetadataOps++ // create on the MDS

	end := start + c.cfg.Bandwidth.TimeToTransfer(size) + stall
	c.markBusy(start, end)
	c.mWritten.Add(int64(size))
	c.mFiles.Inc()
	c.noteTransfer(size, start, end)
	return end, nil
}

// Read streams a stored file starting at simulated time start and returns
// the completion time.
func (c *Cluster) Read(name string, start units.Seconds) (units.Seconds, error) {
	if start < 0 {
		return 0, fmt.Errorf("lustre: negative start time %v", start)
	}
	f, ok := c.files[name]
	if !ok {
		return 0, fmt.Errorf("lustre: no such file %q", name)
	}
	start, stall, err := c.consultFaults(c.readSite, "read", name, start)
	if err != nil {
		return 0, err
	}
	c.stats.BytesRead += f.size
	c.stats.MetadataOps++ // open on the MDS
	end := start + c.cfg.Bandwidth.TimeToTransfer(f.size) + stall
	c.markBusy(start, end)
	c.mRead.Add(int64(f.size))
	c.noteTransfer(f.size, start, end)
	return end, nil
}

// ReadAt models reading a file at a caller-chosen effective rate — e.g.
// page-cache hits or node-local staging reads that do not pay the full
// storage round trip. The rate must be at least the rack bandwidth.
func (c *Cluster) ReadAt(name string, start units.Seconds, rate units.BytesPerSecond) (units.Seconds, error) {
	if rate < c.cfg.Bandwidth {
		return 0, fmt.Errorf("lustre: effective read rate %v below rack bandwidth %v", rate, c.cfg.Bandwidth)
	}
	f, ok := c.files[name]
	if !ok {
		return 0, fmt.Errorf("lustre: no such file %q", name)
	}
	if start < 0 {
		return 0, fmt.Errorf("lustre: negative start time %v", start)
	}
	start, stall, err := c.consultFaults(c.readSite, "read", name, start)
	if err != nil {
		return 0, err
	}
	c.stats.BytesRead += f.size
	c.stats.MetadataOps++
	end := start + rate.TimeToTransfer(f.size) + stall
	c.markBusy(start, end)
	c.mRead.Add(int64(f.size))
	c.noteTransfer(f.size, start, end)
	return end, nil
}

// Delete removes a file (a metadata-only operation; no data-path time).
func (c *Cluster) Delete(name string) error {
	f, ok := c.files[name]
	if !ok {
		return fmt.Errorf("lustre: no such file %q", name)
	}
	delete(c.files, name)
	c.used -= f.size
	c.stats.FilesDeleted++
	c.stats.MetadataOps++
	// Reclaim stripe accounting from the fullest targets first; exact
	// placement is not tracked per file to keep state small.
	for _, s := range f.stripes {
		idx := c.fullestOSS()
		if c.ossUsed[idx] >= s {
			c.ossUsed[idx] -= s
		} else {
			c.ossUsed[idx] = 0
		}
	}
	return nil
}

func (c *Cluster) fullestOSS() int {
	best := 0
	for i := range c.ossUsed {
		if c.ossUsed[i] > c.ossUsed[best] {
			best = i
		}
	}
	return best
}

// markBusy merges [start, end) into the busy timeline.
func (c *Cluster) markBusy(start, end units.Seconds) {
	if end <= start {
		return
	}
	c.busy = append(c.busy, interval{start, end})
	sort.Slice(c.busy, func(i, j int) bool { return c.busy[i].start < c.busy[j].start })
	merged := c.busy[:0]
	for _, iv := range c.busy {
		if n := len(merged); n > 0 && iv.start <= merged[n-1].end {
			if iv.end > merged[n-1].end {
				merged[n-1].end = iv.end
			}
			continue
		}
		merged = append(merged, iv)
	}
	c.busy = merged
}

// BusyTime returns the total simulated time the data path was active.
func (c *Cluster) BusyTime() units.Seconds {
	var s units.Seconds
	for _, iv := range c.busy {
		s += iv.end - iv.start
	}
	return s
}

// PowerTrace returns the rack's ground-truth power over [0, until]: idle
// power with the busy power drawn during data-path activity. This is what
// the paper's Raritan PDU rack meter observes.
func (c *Cluster) PowerTrace(until units.Seconds) (*power.Trace, error) {
	if until <= 0 {
		return nil, fmt.Errorf("lustre: non-positive trace end %v", until)
	}
	tr := &power.Trace{}
	cursor := units.Seconds(0)
	for _, iv := range c.busy {
		if iv.start >= until {
			break
		}
		end := iv.end
		if end > until {
			end = until
		}
		if iv.start > cursor {
			if err := tr.Append(cursor, iv.start, c.cfg.IdlePower); err != nil {
				return nil, err
			}
		}
		if err := tr.Append(iv.start, end, c.cfg.BusyPower); err != nil {
			return nil, err
		}
		cursor = end
	}
	if cursor < until {
		if err := tr.Append(cursor, until, c.cfg.IdlePower); err != nil {
			return nil, err
		}
	}
	return tr, nil
}

// PowerProportionality returns the rack's dynamic power range as a
// fraction of idle power — 1.3% for the paper's rack, versus 193% for its
// compute cluster.
func (c *Cluster) PowerProportionality() float64 {
	if c.cfg.IdlePower == 0 {
		return 0
	}
	return float64(c.cfg.BusyPower-c.cfg.IdlePower) / float64(c.cfg.IdlePower)
}

// WimpyStorage returns Section VIII's proposed redesign of the rack: the
// "brawny" server CPUs replaced with "wimpy" ones at 40% of the idle power
// "with little to no difference in the storage bandwidth offered".
func WimpyStorage() Config {
	cfg := CaddyStorage()
	cfg.IdlePower = units.Watts(float64(cfg.IdlePower) * 0.4)
	cfg.BusyPower = cfg.IdlePower + 29 // same dynamic swing as measured
	return cfg
}

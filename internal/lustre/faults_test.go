package lustre

import (
	"errors"
	"testing"

	"insituviz/internal/faults"
	"insituviz/internal/telemetry"
	"insituviz/internal/units"
)

func newFaultyCluster(t *testing.T, plan faults.Plan) (*Cluster, *faults.Injector) {
	t.Helper()
	c, err := New(CaddyStorage())
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	in, err := faults.New(plan)
	if err != nil {
		t.Fatalf("faults.New: %v", err)
	}
	c.SetFaults(in)
	return c, in
}

// TestFailedWriteLeavesStateUntouched is the partial-failure accounting
// contract: an abandoned write must not leak used bytes, file entries,
// OSS load, stats, or busy time.
func TestFailedWriteLeavesStateUntouched(t *testing.T) {
	// Every occurrence errors and the policy allows no retries, so the
	// second write is abandoned immediately.
	c, _ := newFaultyCluster(t, faults.Plan{Seed: 1, Rules: []faults.Rule{
		{Site: "lustre.write", Kind: faults.KindError, At: []uint64{2, 3, 4, 5}},
	}})
	if _, err := c.Write("ok", 10*units.MB, 0); err != nil {
		t.Fatalf("first write: %v", err)
	}

	before := c.Stats()
	free := c.Free()
	files := c.FileCount()
	oss := c.OSSUsed()
	busy := c.BusyTime()

	if err := c.SetRetry(RetryPolicy{MaxAttempts: 1, BaseDelay: 0.01, MaxDelay: 1, PhaseBudget: 4}); err != nil {
		t.Fatalf("SetRetry: %v", err)
	}
	_, err := c.Write("doomed", 20*units.MB, 5)
	if err == nil {
		t.Fatal("faulted write succeeded")
	}
	if !errors.Is(err, ErrRetryBudgetExhausted) {
		t.Errorf("error %v does not match ErrRetryBudgetExhausted", err)
	}
	var be *BudgetError
	if !errors.As(err, &be) || be.Op != "write" || be.Name != "doomed" {
		t.Errorf("error %v is not the typed BudgetError for the write", err)
	}
	var te *TransientError
	if !errors.As(err, &te) {
		t.Errorf("error %v does not wrap the TransientError", err)
	}

	if got := c.Stats(); got != before {
		t.Errorf("Stats changed across failed write: %+v -> %+v", before, got)
	}
	if got := c.Free(); got != free {
		t.Errorf("Free changed across failed write: %v -> %v", free, got)
	}
	if got := c.FileCount(); got != files {
		t.Errorf("FileCount changed: %d -> %d", files, got)
	}
	for i, u := range c.OSSUsed() {
		if u != oss[i] {
			t.Errorf("OSS %d load changed: %v -> %v", i, oss[i], u)
		}
	}
	if got := c.BusyTime(); got != busy {
		t.Errorf("BusyTime changed across failed write: %v -> %v", busy, got)
	}
	if _, err := c.FileSize("doomed"); err == nil {
		t.Error("abandoned write left a file entry behind")
	}
}

func TestRetriesAbsorbTransientFaults(t *testing.T) {
	// Occurrences 1 and 2 of the write site error; attempts 3 succeeds
	// under the default policy (4 attempts).
	c, in := newFaultyCluster(t, faults.Plan{Seed: 7, Rules: []faults.Rule{
		{Site: "lustre.write", Kind: faults.KindError, At: []uint64{1, 2}},
	}})
	reg := telemetry.NewRegistry()
	c.SetTelemetry(reg)

	plainEnd := CaddyStorage().Bandwidth.TimeToTransfer(10 * units.MB)
	end, err := c.Write("f", 10*units.MB, 0)
	if err != nil {
		t.Fatalf("write with retries: %v", err)
	}
	if end <= plainEnd {
		t.Errorf("retried write end %v not delayed past plain end %v", end, plainEnd)
	}
	if got := reg.Counter("lustre.retries").Value(); got != 2 {
		t.Errorf("lustre.retries = %d, want 2", got)
	}
	if got := reg.Counter("lustre.faults.injected").Value(); got != 2 {
		t.Errorf("lustre.faults.injected = %d, want 2", got)
	}
	if got := in.Fired(); got != 2 {
		t.Errorf("injector fired %d faults, want 2", got)
	}
	if got := c.Stats().FilesCreated; got != 1 {
		t.Errorf("FilesCreated = %d, want 1", got)
	}
}

func TestRetryDelaysAreDeterministic(t *testing.T) {
	plan := faults.Plan{Seed: 7, Rules: []faults.Rule{
		{Site: "lustre.write", Kind: faults.KindError, At: []uint64{1, 2}},
	}}
	run := func() units.Seconds {
		c, _ := newFaultyCluster(t, plan)
		end, err := c.Write("f", 10*units.MB, 0)
		if err != nil {
			t.Fatalf("write: %v", err)
		}
		return end
	}
	if a, b := run(), run(); a != b {
		t.Errorf("same plan, different completion times: %v vs %v", a, b)
	}
}

func TestInjectedStallExtendsTransfer(t *testing.T) {
	c, _ := newFaultyCluster(t, faults.Plan{Seed: 1, Rules: []faults.Rule{
		{Site: "lustre.read", Kind: faults.KindStall, At: []uint64{1}, Stall: 3},
	}})
	if _, err := c.Write("f", 10*units.MB, 0); err != nil {
		t.Fatalf("write: %v", err)
	}
	plain := CaddyStorage().Bandwidth.TimeToTransfer(10 * units.MB)
	end, err := c.Read("f", 100)
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	if want := units.Seconds(100) + plain + 3; end != want {
		t.Errorf("stalled read end = %v, want %v", end, want)
	}
}

func TestPhaseBudgetExhaustionAndReset(t *testing.T) {
	// Every read occurrence errors, so the 2-retry budget drains and the
	// read surfaces the exhaustion; a reset refills it for the next phase.
	c, _ := newFaultyCluster(t, faults.Plan{Seed: 1, Rules: []faults.Rule{
		{Site: "lustre.read", Kind: faults.KindError, Prob: 1},
	}})
	if err := c.SetRetry(RetryPolicy{MaxAttempts: 8, BaseDelay: 0.01, MaxDelay: 1, PhaseBudget: 2}); err != nil {
		t.Fatalf("SetRetry: %v", err)
	}
	if _, err := c.Write("f", 1*units.MB, 0); err != nil {
		t.Fatalf("write: %v", err)
	}
	if _, err := c.Read("f", 10); !errors.Is(err, ErrRetryBudgetExhausted) {
		t.Fatalf("read error = %v, want budget exhaustion", err)
	}
	if got := c.RetryBudget(); got != 0 {
		t.Errorf("budget after exhaustion = %d, want 0", got)
	}
	c.ResetRetryBudget()
	if got := c.RetryBudget(); got != 2 {
		t.Errorf("budget after reset = %d, want 2", got)
	}
}

func TestReadFailureLeavesStatsUntouched(t *testing.T) {
	c, _ := newFaultyCluster(t, faults.Plan{Seed: 1, Rules: []faults.Rule{
		{Site: "lustre.read", Kind: faults.KindError, Prob: 1},
	}})
	if err := c.SetRetry(RetryPolicy{MaxAttempts: 1, BaseDelay: 0.01, MaxDelay: 1, PhaseBudget: 0}); err != nil {
		t.Fatalf("SetRetry: %v", err)
	}
	if _, err := c.Write("f", 1*units.MB, 0); err != nil {
		t.Fatalf("write: %v", err)
	}
	before := c.Stats()
	busy := c.BusyTime()
	if _, err := c.Read("f", 10); err == nil {
		t.Fatal("faulted read succeeded")
	}
	if got := c.Stats(); got != before {
		t.Errorf("Stats changed across failed read: %+v -> %+v", before, got)
	}
	if got := c.BusyTime(); got != busy {
		t.Errorf("BusyTime changed across failed read: %v -> %v", busy, got)
	}
}

func TestDisarmedClusterUnaffected(t *testing.T) {
	c, err := New(CaddyStorage())
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	c.SetFaults(nil) // explicit disarm is a no-op, not a panic
	if _, err := c.Write("f", 1*units.MB, 0); err != nil {
		t.Fatalf("write on disarmed cluster: %v", err)
	}
	if _, err := c.Read("f", 10); err != nil {
		t.Fatalf("read on disarmed cluster: %v", err)
	}
}

func TestRetryPolicyValidate(t *testing.T) {
	bad := []RetryPolicy{
		{MaxAttempts: 0, BaseDelay: 0.1, MaxDelay: 1, PhaseBudget: 1},
		{MaxAttempts: 1, BaseDelay: -0.1, MaxDelay: 1, PhaseBudget: 1},
		{MaxAttempts: 1, BaseDelay: 2, MaxDelay: 1, PhaseBudget: 1},
		{MaxAttempts: 1, BaseDelay: 0.1, MaxDelay: 1, PhaseBudget: -1},
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("policy %d validated: %+v", i, p)
		}
	}
	if err := DefaultRetryPolicy().Validate(); err != nil {
		t.Errorf("default policy invalid: %v", err)
	}
}

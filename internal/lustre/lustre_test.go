package lustre

import (
	"math"
	"testing"

	"insituviz/internal/units"
)

func newRack(t testing.TB) *Cluster {
	t.Helper()
	c, err := New(CaddyStorage())
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestNewValidation(t *testing.T) {
	bad := CaddyStorage()
	bad.Capacity = 0
	if _, err := New(bad); err == nil {
		t.Error("zero capacity accepted")
	}
	bad = CaddyStorage()
	bad.Bandwidth = 0
	if _, err := New(bad); err == nil {
		t.Error("zero bandwidth accepted")
	}
	bad = CaddyStorage()
	bad.BusyPower = bad.IdlePower - 1
	if _, err := New(bad); err == nil {
		t.Error("busy < idle accepted")
	}
	bad = CaddyStorage()
	bad.MDSCount = 0
	if _, err := New(bad); err == nil {
		t.Error("zero MDS accepted")
	}
	// Stripe count clamps.
	cfg := CaddyStorage()
	cfg.StripeCount = 99
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if c.Config().StripeCount != cfg.OSSCount {
		t.Errorf("stripe count = %d, want clamped to %d", c.Config().StripeCount, cfg.OSSCount)
	}
	cfg.StripeCount = 0
	c, err = New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if c.Config().StripeCount != 1 {
		t.Errorf("stripe count = %d, want 1", c.Config().StripeCount)
	}
}

func TestCaddyStorageMatchesPaper(t *testing.T) {
	cfg := CaddyStorage()
	if cfg.Capacity != units.Terabytes(7.7) {
		t.Errorf("capacity = %v", cfg.Capacity)
	}
	if cfg.Bandwidth != units.MegabytesPerSecond(160) {
		t.Errorf("bandwidth = %v", cfg.Bandwidth)
	}
	if cfg.IdlePower != 2273 || cfg.BusyPower != 2302 {
		t.Errorf("power = [%v, %v]", cfg.IdlePower, cfg.BusyPower)
	}
	c, _ := New(cfg)
	// The paper reports a 1.3% dynamic range.
	if pp := c.PowerProportionality(); math.Abs(pp-0.01276) > 0.001 {
		t.Errorf("power proportionality = %v, want ~1.3%%", pp)
	}
}

func TestWriteReadTiming(t *testing.T) {
	c := newRack(t)
	// 1 GB at 160 MB/s = 6.25 s — the physical basis of alpha.
	end, err := c.Write("dump.nc", 1*units.GB, 100)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(float64(end)-106.25) > 1e-9 {
		t.Errorf("write completes at %v, want 106.25", end)
	}
	rend, err := c.Read("dump.nc", 200)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(float64(rend)-206.25) > 1e-9 {
		t.Errorf("read completes at %v, want 206.25", rend)
	}
	if c.Stats().BytesWritten != 1*units.GB || c.Stats().BytesRead != 1*units.GB {
		t.Errorf("stats = %+v", c.Stats())
	}
	if got, err := c.FileSize("dump.nc"); err != nil || got != 1*units.GB {
		t.Errorf("FileSize = %v (%v)", got, err)
	}
	if c.FileCount() != 1 {
		t.Errorf("FileCount = %d", c.FileCount())
	}
}

func TestWriteValidation(t *testing.T) {
	c := newRack(t)
	if _, err := c.Write("", 1, 0); err == nil {
		t.Error("empty name accepted")
	}
	if _, err := c.Write("x", -1, 0); err == nil {
		t.Error("negative size accepted")
	}
	if _, err := c.Write("x", 1, -1); err == nil {
		t.Error("negative start accepted")
	}
	if _, err := c.Write("x", 1*units.GB, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Write("x", 1, 10); err == nil {
		t.Error("duplicate name accepted")
	}
	if _, err := c.Read("missing", 0); err == nil {
		t.Error("read of missing file accepted")
	}
	if _, err := c.Read("x", -1); err == nil {
		t.Error("negative read start accepted")
	}
}

func TestCapacityEnforced(t *testing.T) {
	c := newRack(t)
	if _, err := c.Write("big", units.Terabytes(7), 0); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Write("overflow", units.Terabytes(1), 100); err == nil {
		t.Error("overflow accepted")
	}
	if c.Free() != units.Terabytes(0.7) {
		t.Errorf("Free = %v", c.Free())
	}
	if err := c.Delete("big"); err != nil {
		t.Fatal(err)
	}
	if c.Used() != 0 {
		t.Errorf("Used after delete = %v", c.Used())
	}
	if _, err := c.Write("now-fits", units.Terabytes(1), 200); err != nil {
		t.Errorf("write after delete failed: %v", err)
	}
	if err := c.Delete("missing"); err == nil {
		t.Error("delete of missing file accepted")
	}
	st := c.Stats()
	if st.FilesCreated != 2 || st.FilesDeleted != 1 {
		t.Errorf("stats = %+v", st)
	}
	if st.MetadataOps != 3 {
		t.Errorf("metadata ops = %d, want 3", st.MetadataOps)
	}
}

func TestStripingBalancesOSS(t *testing.T) {
	cfg := CaddyStorage()
	cfg.OSSCount = 4
	cfg.StripeCount = 2
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		name := string(rune('a' + i))
		if _, err := c.Write(name, 100*units.GB, units.Seconds(float64(i)*1000)); err != nil {
			t.Fatal(err)
		}
	}
	// 8 files x 100 GB striped 2-wide across 4 OSS is 800 GB total: each
	// OSS should hold 200 GB.
	for i, used := range c.ossUsed {
		if math.Abs(used.Gigabytes()-200) > 1 {
			t.Errorf("OSS %d holds %v, want ~200 GB", i, used)
		}
	}
}

func TestReadAt(t *testing.T) {
	c := newRack(t)
	if _, err := c.Write("f", 16*units.GB, 0); err != nil {
		t.Fatal(err)
	}
	end, err := c.ReadAt("f", 1000, units.MegabytesPerSecond(1600))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(float64(end)-1010) > 1e-9 {
		t.Errorf("fast read completes at %v, want 1010", end)
	}
	if _, err := c.ReadAt("f", 0, units.MegabytesPerSecond(10)); err == nil {
		t.Error("rate below rack bandwidth accepted")
	}
	if _, err := c.ReadAt("missing", 0, units.MegabytesPerSecond(1600)); err == nil {
		t.Error("missing file accepted")
	}
	if _, err := c.ReadAt("f", -1, units.MegabytesPerSecond(1600)); err == nil {
		t.Error("negative start accepted")
	}
}

func TestBusyTimelineMerges(t *testing.T) {
	c := newRack(t)
	// Two overlapping 6.25 s transfers must merge into one busy interval.
	if _, err := c.Write("a", 1*units.GB, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Write("b", 1*units.GB, 3); err != nil {
		t.Fatal(err)
	}
	want := 9.25 // [0, 6.25) U [3, 9.25) = [0, 9.25)
	if got := c.BusyTime(); math.Abs(float64(got)-want) > 1e-9 {
		t.Errorf("BusyTime = %v, want %v", got, want)
	}
}

func TestPowerTrace(t *testing.T) {
	c := newRack(t)
	if _, err := c.Write("a", 1*units.GB, 10); err != nil {
		t.Fatal(err)
	}
	tr, err := c.PowerTrace(100)
	if err != nil {
		t.Fatal(err)
	}
	if got := tr.At(5); got != 2273 {
		t.Errorf("idle power = %v", got)
	}
	if got := tr.At(12); got != 2302 {
		t.Errorf("busy power = %v", got)
	}
	if got := tr.At(50); got != 2273 {
		t.Errorf("post-transfer power = %v", got)
	}
	if tr.End() != 100 {
		t.Errorf("trace end = %v", tr.End())
	}
	// Energy: mostly idle — the paper's non-proportionality in action.
	idleOnly := units.Energy(2273, 100)
	extra := tr.Energy() - idleOnly
	if extra <= 0 || float64(extra) > 0.01*float64(idleOnly) {
		t.Errorf("dynamic energy = %v of %v idle", extra, idleOnly)
	}
	if _, err := c.PowerTrace(0); err == nil {
		t.Error("zero trace end accepted")
	}
	// Truncation: a transfer past the requested end must be clipped.
	if _, err := c.Write("late", 1*units.GB, 99); err != nil {
		t.Fatal(err)
	}
	tr2, err := c.PowerTrace(100)
	if err != nil {
		t.Fatal(err)
	}
	if tr2.End() != 100 {
		t.Errorf("clipped trace end = %v", tr2.End())
	}
}

func TestZeroByteWrite(t *testing.T) {
	c := newRack(t)
	end, err := c.Write("empty", 0, 5)
	if err != nil {
		t.Fatal(err)
	}
	if end != 5 {
		t.Errorf("zero-byte write completes at %v, want 5", end)
	}
	if c.BusyTime() != 0 {
		t.Errorf("zero-byte write marked busy time %v", c.BusyTime())
	}
}

func TestWimpyStorage(t *testing.T) {
	// Section VIII's proposal: wimpy server CPUs cut idle power to 40%
	// with the same bandwidth and capacity.
	brawny := CaddyStorage()
	wimpy := WimpyStorage()
	if wimpy.Bandwidth != brawny.Bandwidth || wimpy.Capacity != brawny.Capacity {
		t.Error("wimpy rack changed bandwidth or capacity")
	}
	if float64(wimpy.IdlePower) != 0.4*float64(brawny.IdlePower) {
		t.Errorf("wimpy idle = %v, want 40%% of %v", wimpy.IdlePower, brawny.IdlePower)
	}
	if wimpy.BusyPower-wimpy.IdlePower != brawny.BusyPower-brawny.IdlePower {
		t.Error("wimpy rack changed the dynamic swing")
	}
	if _, err := New(wimpy); err != nil {
		t.Fatal(err)
	}
}

package power

import (
	"encoding/csv"
	"fmt"
	"io"
	"math"
	"strconv"

	"insituviz/internal/stats"
	"insituviz/internal/units"
)

// Profile is what a meter reports: one average-power sample per reporting
// interval, the format both the Raritan PDUs and the Appro cage monitors
// produce (the paper's meters report once per minute, averaging multiple
// internal measurements within each interval).
type Profile struct {
	Start    units.Seconds // start of the first interval
	Interval units.Seconds // reporting period
	Powers   []units.Watts // average power of each interval
	// LastPartial is the fraction (0 < f <= 1] of the final interval that
	// was actually observed; 1 when the trace ended on an interval
	// boundary.
	LastPartial float64
}

// Validate checks the profile invariants: a positive reporting interval,
// at least one sample, and LastPartial in (0, 1]. A LastPartial of 0 —
// the zero value of a hand-built Profile — would silently drop the final
// sample from Duration, Energy, and Average, and a LastPartial above 1
// would charge the final sample more time than one interval; both are
// construction errors, reported here instead of surfacing as quietly
// wrong integrals. NaN — the typical residue of dividing by a zero
// meter period when the observed window is shorter than one interval —
// is rejected too: NaN slips through ordered comparisons, and downstream
// it would silently drop the final sample from every attribution while
// poisoning the window total. Meter.Sample and SumProfiles only produce
// valid profiles.
func (p *Profile) Validate() error {
	if p.Interval <= 0 {
		return fmt.Errorf("power: profile has non-positive interval %v", p.Interval)
	}
	if len(p.Powers) == 0 {
		return fmt.Errorf("power: empty profile")
	}
	if math.IsNaN(p.LastPartial) || p.LastPartial <= 0 || p.LastPartial > 1 {
		return fmt.Errorf("power: profile LastPartial %g outside (0, 1] (0 usually means the field was never set)", p.LastPartial)
	}
	return nil
}

// LastFraction returns LastPartial clamped to [0, 1] (NaN clamps to 0),
// the fraction Duration, Energy, WriteCSV, and trace.Attribute weight
// the final sample by. Clamping keeps the integrals mutually consistent
// even on profiles that fail Validate.
func (p *Profile) LastFraction() float64 {
	switch {
	case !(p.LastPartial >= 0): // negative or NaN
		return 0
	case p.LastPartial > 1:
		return 1
	}
	return p.LastPartial
}

// lastFrac is the internal alias of LastFraction.
func (p *Profile) lastFrac() float64 { return p.LastFraction() }

// Duration returns the observed time span.
func (p *Profile) Duration() units.Seconds {
	if len(p.Powers) == 0 {
		return 0
	}
	n := float64(len(p.Powers)-1) + p.lastFrac()
	return units.Seconds(n * float64(p.Interval))
}

// Average returns the time-weighted mean power of the profile. Invalid
// profiles (see Validate) are rejected rather than silently averaged over
// the wrong window.
func (p *Profile) Average() (units.Watts, error) {
	if err := p.Validate(); err != nil {
		return 0, err
	}
	dur := p.Duration()
	if dur <= 0 {
		return 0, fmt.Errorf("power: profile has zero duration")
	}
	return units.Watts(float64(p.Energy()) / float64(dur)), nil
}

// Energy integrates the reported profile: each sample contributes
// power x interval (the paper's energy computation from its measured
// average-power profiles), the final sample weighted by LastPartial
// (clamped to [0, 1] so Energy and Duration always agree; call Validate
// to detect an out-of-range LastPartial explicitly).
func (p *Profile) Energy() units.Joules {
	var e units.Joules
	for i, w := range p.Powers {
		frac := 1.0
		if i == len(p.Powers)-1 {
			frac = p.lastFrac()
		}
		e += units.Energy(w, units.Seconds(float64(p.Interval)*frac))
	}
	return e
}

// Values returns the samples as float64 watts, for statistics.
func (p *Profile) Values() []float64 {
	out := make([]float64, len(p.Powers))
	for i, w := range p.Powers {
		out[i] = float64(w)
	}
	return out
}

// Summary returns descriptive statistics of the samples.
func (p *Profile) Summary() (stats.Summary, error) {
	return stats.Summarize(p.Values())
}

// Meter converts a ground-truth trace into a reported profile.
type Meter struct {
	// Interval is the reporting period; the paper's PDUs and cage monitors
	// report once per minute (their fastest setting).
	Interval units.Seconds
	// Name identifies the meter in reports (e.g. "storage-pdu", "cage07").
	Name string
}

// NewMinuteMeter returns a meter with the paper's one-minute reporting
// period.
func NewMinuteMeter(name string) Meter {
	return Meter{Interval: units.Minutes(1), Name: name}
}

// Sample reads the trace and produces the reported profile: the exact
// average power over each reporting interval starting at the trace start.
// Within-interval variation is invisible to the consumer, exactly as with
// the physical meters.
func (m Meter) Sample(tr *Trace) (*Profile, error) {
	if m.Interval <= 0 {
		return nil, fmt.Errorf("power: meter %q has non-positive interval %v", m.Name, m.Interval)
	}
	start, end := tr.Start(), tr.End()
	if end <= start {
		return nil, fmt.Errorf("power: meter %q: empty trace", m.Name)
	}
	p := &Profile{Start: start, Interval: m.Interval, LastPartial: 1}
	for t0 := start; t0 < end; t0 += m.Interval {
		t1 := t0 + m.Interval
		if t1 > end {
			p.LastPartial = float64(end-t0) / float64(m.Interval)
			t1 = end
		}
		avg, err := tr.AverageOver(t0, t1)
		if err != nil {
			return nil, err
		}
		p.Powers = append(p.Powers, avg)
	}
	return p, nil
}

// SumProfiles adds profiles sample-by-sample (e.g. the 15 cage monitors
// covering the compute cluster, or compute plus storage). The profiles must
// be aligned: same start, interval, sample count, and final-interval
// coverage — which is what meters watching the same run produce.
func SumProfiles(profiles ...*Profile) (*Profile, error) {
	if len(profiles) == 0 {
		return nil, fmt.Errorf("power: no profiles to sum")
	}
	first := profiles[0]
	if err := first.Validate(); err != nil {
		return nil, fmt.Errorf("power: profile 0: %w", err)
	}
	out := &Profile{
		Start:       first.Start,
		Interval:    first.Interval,
		Powers:      make([]units.Watts, len(first.Powers)),
		LastPartial: first.LastPartial,
	}
	for i, p := range profiles {
		if p.Interval != out.Interval {
			return nil, fmt.Errorf("power: profile %d interval %v != %v", i, p.Interval, out.Interval)
		}
		if p.Start != out.Start {
			return nil, fmt.Errorf("power: profile %d starts at %v, want %v", i, p.Start, out.Start)
		}
		if len(p.Powers) != len(out.Powers) || p.LastPartial != out.LastPartial {
			return nil, fmt.Errorf("power: profile %d not aligned (%d samples, partial %g; want %d, %g)",
				i, len(p.Powers), p.LastPartial, len(out.Powers), out.LastPartial)
		}
		for k, w := range p.Powers {
			out.Powers[k] += w
		}
	}
	return out, nil
}

// WriteCSV emits the profile as CSV rows of (interval end time, average
// watts), for plotting outside the harness.
func (p *Profile) WriteCSV(w io.Writer) error {
	if w == nil {
		return fmt.Errorf("power: nil writer")
	}
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"t_end_s", "avg_power_w"}); err != nil {
		return err
	}
	for i, pw := range p.Powers {
		frac := 1.0
		if i == len(p.Powers)-1 {
			frac = p.lastFrac()
		}
		end := float64(p.Start) + (float64(i)+frac)*float64(p.Interval)
		if err := cw.Write([]string{
			strconv.FormatFloat(end, 'g', -1, 64),
			strconv.FormatFloat(float64(pw), 'g', -1, 64),
		}); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

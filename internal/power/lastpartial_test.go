package power

import (
	"math"
	"testing"

	"insituviz/internal/units"
)

// TestValidateRejectsNaNLastPartial: NaN slips through ordered
// comparisons — `<= 0 || > 1` is false for NaN — so Validate must test
// for it explicitly. A NaN LastPartial is the residue of dividing by a
// zero meter period when the observed window is shorter than one
// reporting interval.
func TestValidateRejectsNaNLastPartial(t *testing.T) {
	p := &Profile{
		Interval:    units.Seconds(60),
		Powers:      []units.Watts{100},
		LastPartial: math.NaN(),
	}
	if err := p.Validate(); err == nil {
		t.Fatal("Validate accepted a NaN LastPartial")
	}
}

// TestLastFractionClampsDegenerateValues: the clamp every integral
// weights the final sample by must map NaN and negatives to 0 and
// overshoot to 1, so Duration and Energy stay finite and mutually
// consistent even on invalid profiles.
func TestLastFractionClampsDegenerateValues(t *testing.T) {
	cases := []struct {
		in, want float64
	}{
		{math.NaN(), 0},
		{-0.5, 0},
		{0, 0},
		{0.25, 0.25},
		{1, 1},
		{1.5, 1},
	}
	for _, c := range cases {
		p := &Profile{Interval: 60, Powers: []units.Watts{100}, LastPartial: c.in}
		if got := p.LastFraction(); got != c.want {
			t.Errorf("LastFraction(%g) = %g, want %g", c.in, got, c.want)
		}
		if d := p.Duration(); math.IsNaN(float64(d)) {
			t.Errorf("Duration is NaN for LastPartial %g", c.in)
		}
		if e := p.Energy(); math.IsNaN(float64(e)) {
			t.Errorf("Energy is NaN for LastPartial %g", c.in)
		}
	}
}

// TestSubIntervalWindowProfile: a trace shorter than one meter period
// yields a single-sample profile whose LastPartial is the observed
// fraction — valid, with Duration and Energy matching the trace exactly.
func TestSubIntervalWindowProfile(t *testing.T) {
	tr := &Trace{}
	if err := tr.Append(0, 0.4, 250); err != nil {
		t.Fatal(err)
	}
	m := Meter{Interval: units.Seconds(1), Name: "sub-interval"}
	p, err := m.Sample(tr)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Validate(); err != nil {
		t.Fatalf("sub-interval profile invalid: %v", err)
	}
	if len(p.Powers) != 1 {
		t.Fatalf("got %d samples, want 1", len(p.Powers))
	}
	if math.Abs(p.LastPartial-0.4) > 1e-12 {
		t.Errorf("LastPartial = %g, want 0.4", p.LastPartial)
	}
	if d := float64(p.Duration()); math.Abs(d-0.4) > 1e-12 {
		t.Errorf("Duration = %g, want 0.4", d)
	}
	if e := float64(p.Energy()); math.Abs(e-100) > 1e-9 { // 250 W x 0.4 s
		t.Errorf("Energy = %g, want 100", e)
	}
}

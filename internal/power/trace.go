// Package power implements the measurement infrastructure of the study:
// piecewise-constant ground-truth power traces produced by the simulated
// machine, and the meters that observe them the way the paper's hardware
// did — Raritan-style metered PDUs and Appro cage-level monitors that
// report one averaged sample per interval (one per minute in the paper's
// setup). Energies are integrated from the reported profiles, exactly as
// the paper derives energy from its measured average-power profiles, so
// metering quantization behaves the same way as on the real racks.
package power

import (
	"fmt"
	"math"

	"insituviz/internal/units"
)

// Segment is one span of constant power draw.
type Segment struct {
	Start units.Seconds
	End   units.Seconds
	Power units.Watts
}

// Duration returns the segment length.
func (s Segment) Duration() units.Seconds { return s.End - s.Start }

// Trace is a piecewise-constant power function of simulated time, the
// ground truth a meter samples. Segments are contiguous and appended in
// time order.
type Trace struct {
	segments []Segment
}

// Append adds a constant-power span. It must start exactly where the trace
// currently ends (the first span may start anywhere at or after zero).
func (tr *Trace) Append(start, end units.Seconds, p units.Watts) error {
	if start < 0 || end < start {
		return fmt.Errorf("power: invalid segment [%v, %v]", start, end)
	}
	if p < 0 {
		return fmt.Errorf("power: negative power %v", p)
	}
	if n := len(tr.segments); n > 0 && tr.segments[n-1].End != start {
		return fmt.Errorf("power: segment starts at %v, trace ends at %v", start, tr.segments[n-1].End)
	}
	if end == start {
		return nil // zero-length spans carry no energy and are dropped
	}
	// Merge with the previous segment when the power level is unchanged.
	if n := len(tr.segments); n > 0 && tr.segments[n-1].Power == p {
		tr.segments[n-1].End = end
		return nil
	}
	tr.segments = append(tr.segments, Segment{Start: start, End: end, Power: p})
	return nil
}

// Segments returns a copy of the trace's spans.
func (tr *Trace) Segments() []Segment {
	return append([]Segment(nil), tr.segments...)
}

// Start returns the trace's first instant (zero for an empty trace).
func (tr *Trace) Start() units.Seconds {
	if len(tr.segments) == 0 {
		return 0
	}
	return tr.segments[0].Start
}

// End returns the trace's final instant (zero for an empty trace).
func (tr *Trace) End() units.Seconds {
	if len(tr.segments) == 0 {
		return 0
	}
	return tr.segments[len(tr.segments)-1].End
}

// At returns the power at time t (zero outside the trace).
func (tr *Trace) At(t units.Seconds) units.Watts {
	// Binary search over segment starts.
	lo, hi := 0, len(tr.segments)-1
	for lo <= hi {
		mid := (lo + hi) / 2
		s := tr.segments[mid]
		switch {
		case t < s.Start:
			hi = mid - 1
		case t >= s.End:
			lo = mid + 1
		default:
			return s.Power
		}
	}
	return 0
}

// Energy returns the exact integral of power over the whole trace.
func (tr *Trace) Energy() units.Joules {
	var e units.Joules
	for _, s := range tr.segments {
		e += units.Energy(s.Power, s.Duration())
	}
	return e
}

// AverageOver returns the mean power over [t0, t1] (treating time outside
// the trace as zero power).
func (tr *Trace) AverageOver(t0, t1 units.Seconds) (units.Watts, error) {
	if t1 <= t0 {
		return 0, fmt.Errorf("power: empty averaging window [%v, %v]", t0, t1)
	}
	var e units.Joules
	for _, s := range tr.segments {
		a := math.Max(float64(s.Start), float64(t0))
		b := math.Min(float64(s.End), float64(t1))
		if b > a {
			e += units.Energy(s.Power, units.Seconds(b-a))
		}
	}
	return units.Watts(float64(e) / float64(t1-t0)), nil
}

// SumTraces returns the pointwise sum of several traces — e.g. compute plus
// storage, the paper's "total average power". Traces may have different
// segmentations and extents.
func SumTraces(traces ...*Trace) *Trace {
	// Collect all breakpoints.
	var cuts []float64
	for _, tr := range traces {
		for _, s := range tr.segments {
			cuts = append(cuts, float64(s.Start), float64(s.End))
		}
	}
	if len(cuts) == 0 {
		return &Trace{}
	}
	// Sort and deduplicate.
	sortFloat64s(cuts)
	uniq := cuts[:1]
	for _, c := range cuts[1:] {
		if c != uniq[len(uniq)-1] {
			uniq = append(uniq, c)
		}
	}
	out := &Trace{}
	for i := 0; i+1 < len(uniq); i++ {
		a, b := units.Seconds(uniq[i]), units.Seconds(uniq[i+1])
		mid := units.Seconds((uniq[i] + uniq[i+1]) / 2)
		var p units.Watts
		for _, tr := range traces {
			p += tr.At(mid)
		}
		// Appending through the public API keeps the merge invariants.
		if err := out.Append(a, b, p); err != nil {
			// Unreachable by construction: cuts are sorted and contiguous.
			panic(fmt.Sprintf("power: SumTraces internal error: %v", err))
		}
	}
	return out
}

func sortFloat64s(xs []float64) {
	// Insertion sort is fine for the modest breakpoint counts here, but
	// traces from long runs can have many segments, so use a simple
	// heapsort to stay O(n log n) without importing sort for floats.
	n := len(xs)
	for i := n/2 - 1; i >= 0; i-- {
		siftDown(xs, i, n)
	}
	for i := n - 1; i > 0; i-- {
		xs[0], xs[i] = xs[i], xs[0]
		siftDown(xs, 0, i)
	}
}

func siftDown(xs []float64, root, n int) {
	for {
		child := 2*root + 1
		if child >= n {
			return
		}
		if child+1 < n && xs[child+1] > xs[child] {
			child++
		}
		if xs[root] >= xs[child] {
			return
		}
		xs[root], xs[child] = xs[child], xs[root]
		root = child
	}
}

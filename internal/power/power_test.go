package power

import (
	"bytes"
	"encoding/csv"
	"math"
	"math/rand"
	"testing"

	"insituviz/internal/units"
)

func mustAppend(t *testing.T, tr *Trace, a, b float64, p float64) {
	t.Helper()
	if err := tr.Append(units.Seconds(a), units.Seconds(b), units.Watts(p)); err != nil {
		t.Fatal(err)
	}
}

func TestTraceAppendValidation(t *testing.T) {
	tr := &Trace{}
	if err := tr.Append(-1, 5, 100); err == nil {
		t.Error("negative start accepted")
	}
	if err := tr.Append(5, 4, 100); err == nil {
		t.Error("end before start accepted")
	}
	if err := tr.Append(0, 5, -3); err == nil {
		t.Error("negative power accepted")
	}
	mustAppend(t, tr, 0, 5, 100)
	if err := tr.Append(6, 8, 100); err == nil {
		t.Error("gap accepted")
	}
	if err := tr.Append(4, 8, 100); err == nil {
		t.Error("overlap accepted")
	}
}

func TestTraceMergesEqualPower(t *testing.T) {
	tr := &Trace{}
	mustAppend(t, tr, 0, 5, 100)
	mustAppend(t, tr, 5, 10, 100)
	mustAppend(t, tr, 10, 10, 999) // zero-length dropped
	mustAppend(t, tr, 10, 12, 200)
	segs := tr.Segments()
	if len(segs) != 2 {
		t.Fatalf("segments = %d, want 2 (merge failed)", len(segs))
	}
	if segs[0].End != 10 || segs[0].Power != 100 {
		t.Errorf("merged segment = %+v", segs[0])
	}
}

func TestTraceAtAndBounds(t *testing.T) {
	tr := &Trace{}
	mustAppend(t, tr, 10, 20, 100)
	mustAppend(t, tr, 20, 30, 300)
	if tr.Start() != 10 || tr.End() != 30 {
		t.Errorf("bounds = [%v, %v]", tr.Start(), tr.End())
	}
	cases := []struct {
		t    float64
		want float64
	}{
		{5, 0}, {10, 100}, {15, 100}, {19.999, 100}, {20, 300}, {29, 300}, {30, 0}, {99, 0},
	}
	for _, c := range cases {
		if got := tr.At(units.Seconds(c.t)); float64(got) != c.want {
			t.Errorf("At(%v) = %v, want %v", c.t, got, c.want)
		}
	}
	empty := &Trace{}
	if empty.Start() != 0 || empty.End() != 0 || empty.At(5) != 0 {
		t.Error("empty trace behavior wrong")
	}
}

func TestTraceEnergyAndAverage(t *testing.T) {
	tr := &Trace{}
	mustAppend(t, tr, 0, 60, 1000)  // 60 kJ
	mustAppend(t, tr, 60, 120, 500) // 30 kJ
	if got := tr.Energy(); got != 90000 {
		t.Errorf("Energy = %v, want 90 kJ", got)
	}
	avg, err := tr.AverageOver(0, 120)
	if err != nil || avg != 750 {
		t.Errorf("AverageOver = %v (%v), want 750", avg, err)
	}
	// Window straddling a boundary.
	avg, err = tr.AverageOver(30, 90)
	if err != nil || avg != 750 {
		t.Errorf("straddling AverageOver = %v (%v), want 750", avg, err)
	}
	// Window beyond the trace counts as zero power.
	avg, err = tr.AverageOver(60, 180)
	if err != nil || avg != 250 {
		t.Errorf("overhanging AverageOver = %v (%v), want 250", avg, err)
	}
	if _, err := tr.AverageOver(10, 10); err == nil {
		t.Error("empty window accepted")
	}
}

func TestSumTraces(t *testing.T) {
	compute := &Trace{}
	mustAppend(t, compute, 0, 100, 44000)
	storage := &Trace{}
	mustAppend(t, storage, 0, 50, 2273)
	mustAppend(t, storage, 50, 100, 2302)
	total := SumTraces(compute, storage)
	if got := total.At(25); got != 46273 {
		t.Errorf("sum at 25s = %v", got)
	}
	if got := total.At(75); got != 46302 {
		t.Errorf("sum at 75s = %v", got)
	}
	wantE := compute.Energy() + storage.Energy()
	if got := total.Energy(); math.Abs(float64(got-wantE)) > 1e-6 {
		t.Errorf("sum energy = %v, want %v", got, wantE)
	}
	if empty := SumTraces(); empty.End() != 0 {
		t.Error("empty sum not empty")
	}
}

func TestSumTracesDisjointExtents(t *testing.T) {
	a := &Trace{}
	mustAppend(t, a, 0, 10, 100)
	b := &Trace{}
	mustAppend(t, b, 20, 30, 200)
	total := SumTraces(a, b)
	if got := total.At(5); got != 100 {
		t.Errorf("At(5) = %v", got)
	}
	if got := total.At(15); got != 0 {
		t.Errorf("At(15) = %v, want 0 in the gap", got)
	}
	if got := total.At(25); got != 200 {
		t.Errorf("At(25) = %v", got)
	}
	if got := total.Energy(); got != 3000 {
		t.Errorf("Energy = %v, want 3000", got)
	}
}

func TestMeterSamplesExactAverages(t *testing.T) {
	// 90 s at 1 kW then 90 s at 2 kW, sampled per minute:
	// minute 1 = 1000, minute 2 = (30*1000 + 30*2000)/60 = 1500, minute 3 = 2000.
	tr := &Trace{}
	mustAppend(t, tr, 0, 90, 1000)
	mustAppend(t, tr, 90, 180, 2000)
	m := NewMinuteMeter("pdu")
	p, err := m.Sample(tr)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Powers) != 3 {
		t.Fatalf("samples = %d, want 3", len(p.Powers))
	}
	want := []float64{1000, 1500, 2000}
	for i, w := range want {
		if float64(p.Powers[i]) != w {
			t.Errorf("sample %d = %v, want %v", i, p.Powers[i], w)
		}
	}
	if p.LastPartial != 1 {
		t.Errorf("LastPartial = %v, want 1", p.LastPartial)
	}
	if p.Duration() != 180 {
		t.Errorf("Duration = %v", p.Duration())
	}
	avg, err := p.Average()
	if err != nil || avg != 1500 {
		t.Errorf("Average = %v (%v)", avg, err)
	}
	if got := p.Energy(); got != tr.Energy() {
		t.Errorf("profile energy %v != trace energy %v", got, tr.Energy())
	}
}

func TestMeterPartialFinalInterval(t *testing.T) {
	tr := &Trace{}
	mustAppend(t, tr, 0, 90, 1200) // 1.5 minutes
	m := NewMinuteMeter("pdu")
	p, err := m.Sample(tr)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Powers) != 2 {
		t.Fatalf("samples = %d, want 2", len(p.Powers))
	}
	if p.LastPartial != 0.5 {
		t.Errorf("LastPartial = %v, want 0.5", p.LastPartial)
	}
	if p.Duration() != 90 {
		t.Errorf("Duration = %v, want 90", p.Duration())
	}
	if got := p.Energy(); got != tr.Energy() {
		t.Errorf("profile energy %v != trace energy %v", got, tr.Energy())
	}
}

func TestMeterQuantizationHidesShortSpikes(t *testing.T) {
	// A 6-second spike inside a minute is visible only as a raised
	// average — the reason the paper cannot see sub-minute power events.
	tr := &Trace{}
	mustAppend(t, tr, 0, 30, 1000)
	mustAppend(t, tr, 30, 36, 11000)
	mustAppend(t, tr, 36, 60, 1000)
	m := NewMinuteMeter("pdu")
	p, err := m.Sample(tr)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Powers) != 1 {
		t.Fatalf("samples = %d", len(p.Powers))
	}
	if float64(p.Powers[0]) != 2000 {
		t.Errorf("averaged spike = %v, want 2000", p.Powers[0])
	}
	// But energy is still exact for piecewise traces aligned to the window.
	if p.Energy() != tr.Energy() {
		t.Errorf("energy mismatch: %v vs %v", p.Energy(), tr.Energy())
	}
}

func TestMeterValidation(t *testing.T) {
	m := Meter{Interval: 0, Name: "bad"}
	tr := &Trace{}
	mustAppend(t, tr, 0, 10, 1)
	if _, err := m.Sample(tr); err == nil {
		t.Error("zero interval accepted")
	}
	good := NewMinuteMeter("ok")
	if _, err := good.Sample(&Trace{}); err == nil {
		t.Error("empty trace accepted")
	}
}

func TestProfileEdgeCases(t *testing.T) {
	p := &Profile{Interval: 60}
	if _, err := p.Average(); err == nil {
		t.Error("empty profile average accepted")
	}
	if p.Duration() != 0 {
		t.Error("empty profile duration != 0")
	}
	if p.Energy() != 0 {
		t.Error("empty profile energy != 0")
	}
	p.Powers = []units.Watts{100, 200}
	p.LastPartial = 1
	if s, err := p.Summary(); err != nil || s.N != 2 || s.Mean != 150 {
		t.Errorf("Summary = %+v (%v)", s, err)
	}
	vals := p.Values()
	if len(vals) != 2 || vals[1] != 200 {
		t.Errorf("Values = %v", vals)
	}
}

func TestSumProfiles(t *testing.T) {
	a := &Profile{Interval: 60, Powers: []units.Watts{100, 200}, LastPartial: 1}
	b := &Profile{Interval: 60, Powers: []units.Watts{10, 20}, LastPartial: 1}
	s, err := SumProfiles(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if s.Powers[0] != 110 || s.Powers[1] != 220 {
		t.Errorf("sum = %v", s.Powers)
	}
	if _, err := SumProfiles(); err == nil {
		t.Error("empty sum accepted")
	}
	c := &Profile{Interval: 30, Powers: []units.Watts{1, 2}, LastPartial: 1}
	if _, err := SumProfiles(a, c); err == nil {
		t.Error("mismatched interval accepted")
	}
	d := &Profile{Interval: 60, Powers: []units.Watts{1}, LastPartial: 1}
	if _, err := SumProfiles(a, d); err == nil {
		t.Error("mismatched length accepted")
	}
	e := &Profile{Interval: 60, Start: 30, Powers: []units.Watts{1, 2}, LastPartial: 1}
	if _, err := SumProfiles(a, e); err == nil {
		t.Error("mismatched start accepted")
	}
}

func TestMeterEnergyMatchesTraceProperty(t *testing.T) {
	// For any piecewise-constant trace, the metered profile's energy must
	// equal the ground-truth energy exactly when meter windows tile the
	// trace: per-interval averages are exact integrals.
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 50; trial++ {
		tr := &Trace{}
		t0 := 0.0
		for i := 0; i < 1+rng.Intn(20); i++ {
			d := rng.Float64()*200 + 1
			p := rng.Float64() * 50000
			if err := tr.Append(units.Seconds(t0), units.Seconds(t0+d), units.Watts(p)); err != nil {
				t.Fatal(err)
			}
			t0 += d
		}
		prof, err := NewMinuteMeter("x").Sample(tr)
		if err != nil {
			t.Fatal(err)
		}
		if rel := math.Abs(float64(prof.Energy()-tr.Energy())) / float64(tr.Energy()); rel > 1e-9 {
			t.Fatalf("trial %d: profile energy off by %g", trial, rel)
		}
	}
}

func TestSumTracesLinearityProperty(t *testing.T) {
	// Energy of a sum equals the sum of energies.
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 30; trial++ {
		mk := func() *Trace {
			tr := &Trace{}
			t0 := rng.Float64() * 50
			for i := 0; i < 1+rng.Intn(8); i++ {
				d := rng.Float64()*100 + 1
				tr.Append(units.Seconds(t0), units.Seconds(t0+d), units.Watts(rng.Float64()*1000))
				t0 += d
			}
			return tr
		}
		a, b, c := mk(), mk(), mk()
		total := SumTraces(a, b, c)
		want := a.Energy() + b.Energy() + c.Energy()
		if math.Abs(float64(total.Energy()-want)) > 1e-6*math.Max(1, float64(want)) {
			t.Fatalf("trial %d: sum energy %v, want %v", trial, total.Energy(), want)
		}
	}
}

func TestProfileWriteCSV(t *testing.T) {
	p := &Profile{Interval: 60, Powers: []units.Watts{100, 200}, LastPartial: 0.5}
	var buf bytes.Buffer
	if err := p.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	r := csv.NewReader(&buf)
	rows, err := r.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	if rows[1][0] != "60" || rows[1][1] != "100" {
		t.Errorf("row 1 = %v", rows[1])
	}
	if rows[2][0] != "90" { // 60 + 0.5*60
		t.Errorf("partial-interval end = %v, want 90", rows[2][0])
	}
	if err := p.WriteCSV(nil); err == nil {
		t.Error("nil writer accepted")
	}
}

// TestProfileValidate pins the LastPartial contract: Duration/Energy used
// to weight the final sample by LastPartial unchecked, so a zero value
// (the zero value of a hand-built Profile) silently dropped the sample
// and a value above one over-charged it, while Average divided the two —
// three different answers from one bad field. Validate now rejects both,
// Average refuses invalid profiles, and Energy/Duration clamp identically
// so they always stay mutually consistent.
func TestProfileValidate(t *testing.T) {
	good := &Profile{Interval: 60, Powers: []units.Watts{100}, LastPartial: 0.5}
	if err := good.Validate(); err != nil {
		t.Errorf("valid profile rejected: %v", err)
	}
	cases := []struct {
		name string
		p    *Profile
	}{
		{"zero LastPartial", &Profile{Interval: 60, Powers: []units.Watts{100}}},
		{"LastPartial above 1", &Profile{Interval: 60, Powers: []units.Watts{100}, LastPartial: 1.5}},
		{"negative LastPartial", &Profile{Interval: 60, Powers: []units.Watts{100}, LastPartial: -0.1}},
		{"no samples", &Profile{Interval: 60, LastPartial: 1}},
		{"non-positive interval", &Profile{Powers: []units.Watts{100}, LastPartial: 1}},
	}
	for _, tc := range cases {
		if err := tc.p.Validate(); err == nil {
			t.Errorf("%s: Validate accepted", tc.name)
		}
		if _, err := tc.p.Average(); err == nil {
			t.Errorf("%s: Average accepted", tc.name)
		}
	}
}

// TestProfileClampConsistency: even on invalid profiles, Energy and
// Duration clamp LastPartial the same way, so Energy/Duration is still a
// well-defined mean (Average itself refuses, but downstream arithmetic
// that calls the two directly must not diverge).
func TestProfileClampConsistency(t *testing.T) {
	for _, lp := range []float64{-0.5, 0, 1, 1.5} {
		p := &Profile{Interval: 10, Powers: []units.Watts{100, 100}, LastPartial: lp}
		wantFrac := lp
		if wantFrac < 0 {
			wantFrac = 0
		}
		if wantFrac > 1 {
			wantFrac = 1
		}
		wantDur := units.Seconds((1 + wantFrac) * 10)
		if p.Duration() != wantDur {
			t.Errorf("LastPartial %g: Duration = %v, want %v", lp, p.Duration(), wantDur)
		}
		wantE := units.Joules(float64(wantDur) * 100)
		if p.Energy() != wantE {
			t.Errorf("LastPartial %g: Energy = %v, want %v", lp, p.Energy(), wantE)
		}
	}
}

// TestSumProfilesRejectsInvalidFirst: SumProfiles copies alignment from
// profiles[0], so an invalid first profile must be rejected, not
// propagated into the sum.
func TestSumProfilesRejectsInvalidFirst(t *testing.T) {
	bad := &Profile{Interval: 60, Powers: []units.Watts{1}} // LastPartial unset
	ok := &Profile{Interval: 60, Powers: []units.Watts{1}, LastPartial: 1}
	if _, err := SumProfiles(bad, ok); err == nil {
		t.Error("invalid first profile accepted")
	}
}

package partition

import (
	"math"
	"testing"

	"insituviz/internal/mesh"
)

func testMesh(t testing.TB, subdiv int) *mesh.Mesh {
	t.Helper()
	m, err := mesh.NewIcosphere(subdiv, mesh.EarthRadius)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestNewValidation(t *testing.T) {
	m := testMesh(t, 2)
	if _, err := New(nil, 4); err == nil {
		t.Error("nil mesh accepted")
	}
	if _, err := New(m, 0); err == nil {
		t.Error("zero parts accepted")
	}
	if _, err := New(m, m.NCells()+1); err == nil {
		t.Error("more parts than cells accepted")
	}
	if _, err := BlockPartition(nil, 4); err == nil {
		t.Error("block: nil mesh accepted")
	}
	if _, err := BlockPartition(m, 0); err == nil {
		t.Error("block: zero parts accepted")
	}
}

func TestEveryCellOwnedExactlyOnce(t *testing.T) {
	m := testMesh(t, 3)
	for _, nParts := range []int{1, 2, 3, 7, 16, 150} {
		p, err := New(m, nParts)
		if err != nil {
			t.Fatal(err)
		}
		seen := make([]bool, m.NCells())
		for r := 0; r < nParts; r++ {
			cells, err := p.Cells(r)
			if err != nil {
				t.Fatal(err)
			}
			for _, ci := range cells {
				if seen[ci] {
					t.Fatalf("nParts=%d: cell %d owned twice", nParts, ci)
				}
				seen[ci] = true
				o, err := p.Owner(ci)
				if err != nil || o != r {
					t.Fatalf("nParts=%d: Owner(%d) = %d (%v), want %d", nParts, ci, o, err, r)
				}
			}
		}
		for ci, s := range seen {
			if !s {
				t.Fatalf("nParts=%d: cell %d unowned", nParts, ci)
			}
		}
	}
}

func TestBalance(t *testing.T) {
	m := testMesh(t, 3) // 642 cells
	for _, nParts := range []int{2, 6, 10, 150} {
		p, err := New(m, nParts)
		if err != nil {
			t.Fatal(err)
		}
		counts := p.Counts()
		min, max := counts[0], counts[0]
		for _, c := range counts[1:] {
			if c < min {
				min = c
			}
			if c > max {
				max = c
			}
		}
		// Proportional splitting keeps parts within a couple of cells.
		if max-min > 2 {
			t.Errorf("nParts=%d: counts spread %d..%d", nParts, min, max)
		}
		// The best achievable imbalance is ceil(mean)/mean; allow a single
		// extra cell of rounding drift from the recursion.
		mean := float64(m.NCells()) / float64(nParts)
		bound := (math.Ceil(mean) + 1) / mean
		if imb := p.Imbalance(); imb > bound {
			t.Errorf("nParts=%d: imbalance %v exceeds bound %v", nParts, imb, bound)
		}
	}
}

func TestRCBBeatsBlockOnCutEdges(t *testing.T) {
	// Spatially compact parts cut fewer communication edges than index
	// blocks — the reason MPAS uses a graph/spatial partitioner.
	m := testMesh(t, 4) // 2562 cells
	rcb, err := New(m, 32)
	if err != nil {
		t.Fatal(err)
	}
	blk, err := BlockPartition(m, 32)
	if err != nil {
		t.Fatal(err)
	}
	if rcb.CutEdges() >= blk.CutEdges() {
		t.Errorf("RCB cut %d edges, block cut %d — expected RCB to win", rcb.CutEdges(), blk.CutEdges())
	}
}

func TestSinglePartHasNoCuts(t *testing.T) {
	m := testMesh(t, 2)
	p, err := New(m, 1)
	if err != nil {
		t.Fatal(err)
	}
	if p.CutEdges() != 0 {
		t.Errorf("single part cut %d edges", p.CutEdges())
	}
	halo, err := p.HaloCells(0)
	if err != nil || len(halo) != 0 {
		t.Errorf("single part halo = %v (%v)", halo, err)
	}
	st := p.Exchange()
	if st.TotalGhosts != 0 || st.BytesPerField != 0 {
		t.Errorf("single part exchange = %+v", st)
	}
}

func TestHaloCellsCorrect(t *testing.T) {
	m := testMesh(t, 2)
	p, err := New(m, 5)
	if err != nil {
		t.Fatal(err)
	}
	for r := 0; r < 5; r++ {
		halo, err := p.HaloCells(r)
		if err != nil {
			t.Fatal(err)
		}
		haloSet := map[int]bool{}
		for _, ci := range halo {
			haloSet[ci] = true
			if o, _ := p.Owner(ci); o == r {
				t.Fatalf("part %d: halo cell %d is owned locally", r, ci)
			}
		}
		// Brute force: every foreign neighbor of an owned cell is in the
		// halo, and nothing else.
		want := map[int]bool{}
		cells, _ := p.Cells(r)
		for _, ci := range cells {
			for _, nb := range m.Cells[ci].Neighbors {
				if o, _ := p.Owner(nb); o != r {
					want[nb] = true
				}
			}
		}
		if len(want) != len(haloSet) {
			t.Fatalf("part %d: halo size %d, want %d", r, len(haloSet), len(want))
		}
		for ci := range want {
			if !haloSet[ci] {
				t.Fatalf("part %d: missing halo cell %d", r, ci)
			}
		}
	}
	if _, err := p.HaloCells(-1); err == nil {
		t.Error("negative part accepted")
	}
	if _, err := p.HaloCells(5); err == nil {
		t.Error("overflow part accepted")
	}
	if _, err := p.Cells(9); err == nil {
		t.Error("overflow part accepted by Cells")
	}
	if _, err := p.Owner(-1); err == nil {
		t.Error("negative cell accepted by Owner")
	}
}

func TestMasksMatchOwnership(t *testing.T) {
	m := testMesh(t, 2)
	p, err := New(m, 4)
	if err != nil {
		t.Fatal(err)
	}
	masks := p.Masks()
	if len(masks) != 4 {
		t.Fatalf("masks = %d", len(masks))
	}
	for ci := 0; ci < m.NCells(); ci++ {
		owners := 0
		for r, mask := range masks {
			if mask[ci] {
				owners++
				if o, _ := p.Owner(ci); o != r {
					t.Fatalf("mask/owner disagree at cell %d", ci)
				}
			}
		}
		if owners != 1 {
			t.Fatalf("cell %d in %d masks", ci, owners)
		}
	}
}

func TestExchangeStats(t *testing.T) {
	m := testMesh(t, 3)
	p, err := New(m, 8)
	if err != nil {
		t.Fatal(err)
	}
	st := p.Exchange()
	if st.TotalGhosts <= 0 || st.MaxGhosts <= 0 || st.CutEdges <= 0 {
		t.Errorf("exchange stats = %+v", st)
	}
	if st.BytesPerField != int64(st.TotalGhosts)*8 {
		t.Errorf("bytes = %d, want %d", st.BytesPerField, st.TotalGhosts*8)
	}
	if st.MaxGhosts > st.TotalGhosts {
		t.Error("max > total")
	}
	// Ghost count is bounded by cut edges (each cut edge contributes at
	// most one ghost per side) and is at least cutEdges/6-ish; sanity:
	if st.TotalGhosts > 2*st.CutEdges {
		t.Errorf("ghosts %d exceed 2x cut edges %d", st.TotalGhosts, st.CutEdges)
	}
}

func TestDeterminism(t *testing.T) {
	m := testMesh(t, 3)
	a, err := New(m, 12)
	if err != nil {
		t.Fatal(err)
	}
	b, err := New(m, 12)
	if err != nil {
		t.Fatal(err)
	}
	for ci := 0; ci < m.NCells(); ci++ {
		oa, _ := a.Owner(ci)
		ob, _ := b.Owner(ci)
		if oa != ob {
			t.Fatalf("partition not deterministic at cell %d", ci)
		}
	}
}

func BenchmarkRCB150Parts(b *testing.B) {
	m, err := mesh.NewIcosphere(5, mesh.EarthRadius) // 10242 cells
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := New(m, 150); err != nil {
			b.Fatal(err)
		}
	}
}

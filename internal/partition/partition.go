// Package partition decomposes the unstructured mesh across ranks the way
// MPAS distributes its Voronoi cells across MPI processes: spatially
// compact, load-balanced blocks produced by recursive coordinate bisection
// (RCB), plus the halo (ghost-cell) analysis that determines how many
// bytes each rank exchanges with its neighbors every timestep — the
// on-fabric data movement that feeds the interconnect model.
package partition

import (
	"fmt"
	"sort"

	"insituviz/internal/mesh"
)

// Partition assigns every cell of a mesh to one of nParts ranks.
type Partition struct {
	m      *mesh.Mesh
	nParts int
	owner  []int
	cells  [][]int
}

// New builds a balanced spatial partition of m into nParts parts using
// recursive coordinate bisection on the cell centers.
func New(m *mesh.Mesh, nParts int) (*Partition, error) {
	if m == nil || m.NCells() == 0 {
		return nil, fmt.Errorf("partition: nil or empty mesh")
	}
	if nParts < 1 {
		return nil, fmt.Errorf("partition: non-positive part count %d", nParts)
	}
	if nParts > m.NCells() {
		return nil, fmt.Errorf("partition: more parts (%d) than cells (%d)", nParts, m.NCells())
	}
	p := &Partition{m: m, nParts: nParts, owner: make([]int, m.NCells())}
	ids := make([]int, m.NCells())
	for i := range ids {
		ids[i] = i
	}
	p.bisect(ids, 0, nParts)
	p.cells = make([][]int, nParts)
	for ci, o := range p.owner {
		p.cells[o] = append(p.cells[o], ci)
	}
	return p, nil
}

// bisect assigns parts [firstPart, firstPart+parts) to the given cells.
func (p *Partition) bisect(ids []int, firstPart, parts int) {
	if parts == 1 {
		for _, ci := range ids {
			p.owner[ci] = firstPart
		}
		return
	}
	// Split the part range and the cell set proportionally.
	leftParts := parts / 2
	rightParts := parts - leftParts
	nLeft := len(ids) * leftParts / parts

	// Choose the coordinate axis with the largest spread.
	axis := p.widestAxis(ids)
	sort.Slice(ids, func(a, b int) bool {
		va := p.m.Cells[ids[a]].Center[axis]
		vb := p.m.Cells[ids[b]].Center[axis]
		if va != vb {
			return va < vb
		}
		return ids[a] < ids[b] // deterministic tie-break
	})
	p.bisect(ids[:nLeft], firstPart, leftParts)
	p.bisect(ids[nLeft:], firstPart+leftParts, rightParts)
}

func (p *Partition) widestAxis(ids []int) int {
	var min, max [3]float64
	for k := 0; k < 3; k++ {
		min[k], max[k] = 2, -2
	}
	for _, ci := range ids {
		c := p.m.Cells[ci].Center
		for k := 0; k < 3; k++ {
			if c[k] < min[k] {
				min[k] = c[k]
			}
			if c[k] > max[k] {
				max[k] = c[k]
			}
		}
	}
	axis := 0
	best := max[0] - min[0]
	for k := 1; k < 3; k++ {
		if s := max[k] - min[k]; s > best {
			best, axis = s, k
		}
	}
	return axis
}

// NParts returns the number of parts.
func (p *Partition) NParts() int { return p.nParts }

// Owner returns the part owning cell ci.
func (p *Partition) Owner(ci int) (int, error) {
	if ci < 0 || ci >= len(p.owner) {
		return 0, fmt.Errorf("partition: cell %d out of range [0,%d)", ci, len(p.owner))
	}
	return p.owner[ci], nil
}

// Cells returns the cells owned by part r, ascending.
func (p *Partition) Cells(r int) ([]int, error) {
	if r < 0 || r >= p.nParts {
		return nil, fmt.Errorf("partition: part %d out of range [0,%d)", r, p.nParts)
	}
	return append([]int(nil), p.cells[r]...), nil
}

// Counts returns the cell count per part.
func (p *Partition) Counts() []int {
	out := make([]int, p.nParts)
	for r := range p.cells {
		out[r] = len(p.cells[r])
	}
	return out
}

// Masks returns one ownership mask per part, for the renderer's
// RenderOwned.
func (p *Partition) Masks() [][]bool {
	masks := make([][]bool, p.nParts)
	for r := range masks {
		mask := make([]bool, len(p.owner))
		for _, ci := range p.cells[r] {
			mask[ci] = true
		}
		masks[r] = mask
	}
	return masks
}

// Imbalance returns max/mean part size, 1.0 for a perfect balance.
func (p *Partition) Imbalance() float64 {
	counts := p.Counts()
	max := 0
	for _, c := range counts {
		if c > max {
			max = c
		}
	}
	mean := float64(len(p.owner)) / float64(p.nParts)
	return float64(max) / mean
}

// CutEdges returns the number of mesh edges whose two cells live on
// different parts — the communication graph's total edge weight.
func (p *Partition) CutEdges() int {
	cut := 0
	for ei := range p.m.Edges {
		e := &p.m.Edges[ei]
		if p.owner[e.Cells[0]] != p.owner[e.Cells[1]] {
			cut++
		}
	}
	return cut
}

// HaloCells returns the ghost cells of part r: cells owned elsewhere that
// share an edge with r's cells, ascending.
func (p *Partition) HaloCells(r int) ([]int, error) {
	if r < 0 || r >= p.nParts {
		return nil, fmt.Errorf("partition: part %d out of range [0,%d)", r, p.nParts)
	}
	seen := map[int]bool{}
	for _, ci := range p.cells[r] {
		for _, nb := range p.m.Cells[ci].Neighbors {
			if p.owner[nb] != r && !seen[nb] {
				seen[nb] = true
			}
		}
	}
	out := make([]int, 0, len(seen))
	for ci := range seen {
		out = append(out, ci)
	}
	sort.Ints(out)
	return out, nil
}

// ExchangeStats summarizes one timestep's halo exchange.
type ExchangeStats struct {
	TotalGhosts   int // sum of per-part halo sizes
	MaxGhosts     int // largest per-part halo
	CutEdges      int
	BytesPerField int64 // total bytes moved to refresh one 8-byte field
}

// Exchange computes the halo-exchange volume of the partition: every part
// receives each of its ghost cells once per field refresh.
func (p *Partition) Exchange() ExchangeStats {
	st := ExchangeStats{CutEdges: p.CutEdges()}
	for r := 0; r < p.nParts; r++ {
		halo, err := p.HaloCells(r)
		if err != nil {
			continue // unreachable: r is in range
		}
		st.TotalGhosts += len(halo)
		if len(halo) > st.MaxGhosts {
			st.MaxGhosts = len(halo)
		}
	}
	st.BytesPerField = int64(st.TotalGhosts) * 8
	return st
}

// BlockPartition returns the naive contiguous-index decomposition, the
// baseline RCB is compared against.
func BlockPartition(m *mesh.Mesh, nParts int) (*Partition, error) {
	if m == nil || m.NCells() == 0 {
		return nil, fmt.Errorf("partition: nil or empty mesh")
	}
	if nParts < 1 || nParts > m.NCells() {
		return nil, fmt.Errorf("partition: invalid part count %d", nParts)
	}
	p := &Partition{m: m, nParts: nParts, owner: make([]int, m.NCells())}
	per := m.NCells() / nParts
	extra := m.NCells() % nParts
	ci := 0
	for r := 0; r < nParts; r++ {
		n := per
		if r < extra {
			n++
		}
		for k := 0; k < n; k++ {
			p.owner[ci] = r
			ci++
		}
	}
	p.cells = make([][]int, nParts)
	for ci, o := range p.owner {
		p.cells[o] = append(p.cells[o], ci)
	}
	return p, nil
}

package pio

import (
	"math/rand"
	"testing"
	"testing/quick"

	"insituviz/internal/units"
)

func TestNewDecompositionValidation(t *testing.T) {
	if _, err := NewDecomposition(0, 1); err == nil {
		t.Error("zero length accepted")
	}
	if _, err := NewDecomposition(10, 0); err == nil {
		t.Error("zero ranks accepted")
	}
	if _, err := NewDecomposition(3, 5); err == nil {
		t.Error("more ranks than elements accepted")
	}
}

func TestDecompositionCoversExactly(t *testing.T) {
	d, err := NewDecomposition(103, 7)
	if err != nil {
		t.Fatal(err)
	}
	if d.NRanks() != 7 || d.GlobalLen() != 103 {
		t.Fatalf("basic getters wrong: %d ranks, %d len", d.NRanks(), d.GlobalLen())
	}
	prevEnd := 0
	total := 0
	for r := 0; r < 7; r++ {
		s, e, err := d.Range(r)
		if err != nil {
			t.Fatal(err)
		}
		if s != prevEnd {
			t.Fatalf("rank %d starts at %d, want %d", r, s, prevEnd)
		}
		if e <= s {
			t.Fatalf("rank %d has empty range", r)
		}
		total += e - s
		prevEnd = e
	}
	if total != 103 || prevEnd != 103 {
		t.Fatalf("coverage = %d, end = %d", total, prevEnd)
	}
	// Block sizes differ by at most one.
	s0, e0, _ := d.Range(0)
	s6, e6, _ := d.Range(6)
	if (e0-s0)-(e6-s6) > 1 {
		t.Errorf("imbalanced blocks: %d vs %d", e0-s0, e6-s6)
	}
	if _, _, err := d.Range(-1); err == nil {
		t.Error("negative rank accepted")
	}
	if _, _, err := d.Range(7); err == nil {
		t.Error("overflow rank accepted")
	}
}

func TestScatterGatherRoundTrip(t *testing.T) {
	d, err := NewDecomposition(64, 6)
	if err != nil {
		t.Fatal(err)
	}
	global := make([]float64, 64)
	rng := rand.New(rand.NewSource(9))
	for i := range global {
		global[i] = rng.NormFloat64()
	}
	parts, err := d.Scatter(global)
	if err != nil {
		t.Fatal(err)
	}
	if len(parts) != 6 {
		t.Fatalf("parts = %d", len(parts))
	}
	p, err := NewPlan(d, 2)
	if err != nil {
		t.Fatal(err)
	}
	got, st, err := p.Gather(parts, 8)
	if err != nil {
		t.Fatal(err)
	}
	for i := range global {
		if got[i] != global[i] {
			t.Fatalf("gathered[%d] = %g, want %g", i, got[i], global[i])
		}
	}
	if st.AggToDiskBytes != units.Bytes(64*8) {
		t.Errorf("AggToDiskBytes = %v, want %v", st.AggToDiskBytes, 64*8)
	}
	if st.Aggregators != 2 {
		t.Errorf("Aggregators = %d", st.Aggregators)
	}
	if st.MaxFanIn != 3 {
		t.Errorf("MaxFanIn = %d, want 3", st.MaxFanIn)
	}
	if st.RankToAggBytes <= 0 || st.RankToAggBytes >= st.AggToDiskBytes {
		t.Errorf("RankToAggBytes = %v, want in (0, %v)", st.RankToAggBytes, st.AggToDiskBytes)
	}
}

func TestScatterValidation(t *testing.T) {
	d, _ := NewDecomposition(10, 2)
	if _, err := d.Scatter(make([]float64, 9)); err == nil {
		t.Error("wrong length accepted")
	}
}

func TestNewPlanValidation(t *testing.T) {
	d, _ := NewDecomposition(10, 4)
	if _, err := NewPlan(nil, 1); err == nil {
		t.Error("nil decomposition accepted")
	}
	if _, err := NewPlan(d, 0); err == nil {
		t.Error("zero aggregators accepted")
	}
	p, err := NewPlan(d, 99)
	if err != nil {
		t.Fatal(err)
	}
	if p.Aggregators() != 4 {
		t.Errorf("aggregators clamped to %d, want 4", p.Aggregators())
	}
}

func TestAggregatorAssignmentContiguous(t *testing.T) {
	d, _ := NewDecomposition(100, 10)
	p, _ := NewPlan(d, 3)
	prev := 0
	for r := 0; r < 10; r++ {
		a, err := p.AggregatorOf(r)
		if err != nil {
			t.Fatal(err)
		}
		if a < prev {
			t.Fatalf("aggregator assignment not monotone at rank %d", r)
		}
		prev = a
	}
	if prev != 2 {
		t.Errorf("last aggregator = %d, want 2", prev)
	}
	if _, err := p.AggregatorOf(-1); err == nil {
		t.Error("negative rank accepted")
	}
	if _, err := p.AggregatorOf(10); err == nil {
		t.Error("overflow rank accepted")
	}
}

func TestGatherValidation(t *testing.T) {
	d, _ := NewDecomposition(10, 2)
	p, _ := NewPlan(d, 1)
	if _, _, err := p.Gather(make([][]float64, 1), 8); err == nil {
		t.Error("wrong block count accepted")
	}
	parts := [][]float64{make([]float64, 5), make([]float64, 4)}
	if _, _, err := p.Gather(parts, 8); err == nil {
		t.Error("mis-sized block accepted")
	}
	parts[1] = make([]float64, 5)
	if _, _, err := p.Gather(parts, 0); err == nil {
		t.Error("zero element width accepted")
	}
}

func TestSingleAggregatorFanIn(t *testing.T) {
	d, _ := NewDecomposition(40, 8)
	p, _ := NewPlan(d, 1)
	parts, _ := d.Scatter(make([]float64, 40))
	_, st, err := p.Gather(parts, 4)
	if err != nil {
		t.Fatal(err)
	}
	if st.MaxFanIn != 8 {
		t.Errorf("MaxFanIn = %d, want 8", st.MaxFanIn)
	}
	// With one aggregator, 7 of 8 ranks ship data off-node: 35 of 40
	// elements at 4 bytes each.
	if st.RankToAggBytes != units.Bytes(35*4) {
		t.Errorf("RankToAggBytes = %v, want %v", st.RankToAggBytes, 35*4)
	}
}

func TestGatherRoundTripProperty(t *testing.T) {
	f := func(seed int64, n16, r8, a8 uint8) bool {
		n := int(n16)%200 + 1
		r := int(r8)%n + 1
		a := int(a8)%r + 1
		d, err := NewDecomposition(n, r)
		if err != nil {
			return false
		}
		rng := rand.New(rand.NewSource(seed))
		global := make([]float64, n)
		for i := range global {
			global[i] = rng.NormFloat64()
		}
		parts, err := d.Scatter(global)
		if err != nil {
			return false
		}
		p, err := NewPlan(d, a)
		if err != nil {
			return false
		}
		got, _, err := p.Gather(parts, 8)
		if err != nil {
			return false
		}
		for i := range global {
			if got[i] != global[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func BenchmarkGather(b *testing.B) {
	d, err := NewDecomposition(1<<18, 128)
	if err != nil {
		b.Fatal(err)
	}
	global := make([]float64, 1<<18)
	parts, _ := d.Scatter(global)
	p, _ := NewPlan(d, 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := p.Gather(parts, 8); err != nil {
			b.Fatal(err)
		}
	}
}

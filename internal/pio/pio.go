// Package pio models the parallel I/O middleware the paper's
// post-processing pipeline writes through (PIO over parallel-netCDF):
// a block decomposition of global fields across compute ranks, and a
// rank-to-aggregator rearrangement in which a small set of I/O aggregator
// ranks collect the blocks and perform the actual file writes. The
// functional path really gathers data (concurrently, one goroutine per
// aggregator, standing in for MPI gather) and the accounting path reports
// how many bytes crossed each stage — the off-node data movement the
// paper's power analysis centers on.
package pio

import (
	"fmt"
	"sync"

	"insituviz/internal/units"
)

// Decomposition is a contiguous block decomposition of a global
// one-dimensional index space across compute ranks, the layout MPAS uses
// for cell-centered fields.
type Decomposition struct {
	globalLen int
	starts    []int // starts[r] .. starts[r+1] is rank r's block
}

// NewDecomposition splits globalLen indices across nRanks ranks as evenly
// as possible.
func NewDecomposition(globalLen, nRanks int) (*Decomposition, error) {
	if globalLen <= 0 {
		return nil, fmt.Errorf("pio: non-positive global length %d", globalLen)
	}
	if nRanks <= 0 {
		return nil, fmt.Errorf("pio: non-positive rank count %d", nRanks)
	}
	if nRanks > globalLen {
		return nil, fmt.Errorf("pio: more ranks (%d) than elements (%d)", nRanks, globalLen)
	}
	d := &Decomposition{globalLen: globalLen, starts: make([]int, nRanks+1)}
	per := globalLen / nRanks
	extra := globalLen % nRanks
	pos := 0
	for r := 0; r < nRanks; r++ {
		d.starts[r] = pos
		pos += per
		if r < extra {
			pos++
		}
	}
	d.starts[nRanks] = pos
	return d, nil
}

// NRanks returns the number of compute ranks.
func (d *Decomposition) NRanks() int { return len(d.starts) - 1 }

// GlobalLen returns the global element count.
func (d *Decomposition) GlobalLen() int { return d.globalLen }

// Range returns rank r's half-open global index range [start, end).
func (d *Decomposition) Range(r int) (start, end int, err error) {
	if r < 0 || r >= d.NRanks() {
		return 0, 0, fmt.Errorf("pio: rank %d out of range [0,%d)", r, d.NRanks())
	}
	return d.starts[r], d.starts[r+1], nil
}

// Scatter splits a global field into per-rank blocks (views into global —
// callers that mutate blocks should copy).
func (d *Decomposition) Scatter(global []float64) ([][]float64, error) {
	if len(global) != d.globalLen {
		return nil, fmt.Errorf("pio: field length %d, decomposition expects %d", len(global), d.globalLen)
	}
	parts := make([][]float64, d.NRanks())
	for r := range parts {
		parts[r] = global[d.starts[r]:d.starts[r+1]]
	}
	return parts, nil
}

// Stats describes the data movement of one aggregated write.
type Stats struct {
	RankToAggBytes units.Bytes // bytes rearranged from compute ranks to aggregators
	AggToDiskBytes units.Bytes // bytes the aggregators committed to storage
	Aggregators    int
	MaxFanIn       int // largest number of compute ranks feeding one aggregator
}

// Plan assigns compute ranks to I/O aggregators. Ranks are grouped
// contiguously so each aggregator assembles one contiguous span of the
// global index space, as PIO's box rearranger does.
type Plan struct {
	dec   *Decomposition
	aggOf []int // aggregator index per rank
	nAgg  int
}

// NewPlan builds an aggregation plan with the given number of aggregators
// (clamped to the rank count; at least 1).
func NewPlan(dec *Decomposition, aggregators int) (*Plan, error) {
	if dec == nil {
		return nil, fmt.Errorf("pio: nil decomposition")
	}
	if aggregators <= 0 {
		return nil, fmt.Errorf("pio: non-positive aggregator count %d", aggregators)
	}
	n := dec.NRanks()
	if aggregators > n {
		aggregators = n
	}
	p := &Plan{dec: dec, aggOf: make([]int, n), nAgg: aggregators}
	per := n / aggregators
	extra := n % aggregators
	rank := 0
	for a := 0; a < aggregators; a++ {
		cnt := per
		if a < extra {
			cnt++
		}
		for k := 0; k < cnt; k++ {
			p.aggOf[rank] = a
			rank++
		}
	}
	return p, nil
}

// Aggregators returns the number of aggregators in the plan.
func (p *Plan) Aggregators() int { return p.nAgg }

// AggregatorOf returns the aggregator assigned to rank r.
func (p *Plan) AggregatorOf(r int) (int, error) {
	if r < 0 || r >= len(p.aggOf) {
		return 0, fmt.Errorf("pio: rank %d out of range [0,%d)", r, len(p.aggOf))
	}
	return p.aggOf[r], nil
}

// Gather assembles per-rank blocks into a freshly allocated global field,
// one goroutine per aggregator (the MPI rearrangement stage), and reports
// the movement statistics for an element width of elemBytes bytes.
func (p *Plan) Gather(parts [][]float64, elemBytes int) ([]float64, Stats, error) {
	if len(parts) != p.dec.NRanks() {
		return nil, Stats{}, fmt.Errorf("pio: %d blocks for %d ranks", len(parts), p.dec.NRanks())
	}
	if elemBytes <= 0 {
		return nil, Stats{}, fmt.Errorf("pio: non-positive element width %d", elemBytes)
	}
	for r, blk := range parts {
		if len(blk) != p.dec.starts[r+1]-p.dec.starts[r] {
			return nil, Stats{}, fmt.Errorf("pio: rank %d block has %d elements, want %d",
				r, len(blk), p.dec.starts[r+1]-p.dec.starts[r])
		}
	}
	global := make([]float64, p.dec.globalLen)

	ranksOf := make([][]int, p.nAgg)
	for r, a := range p.aggOf {
		ranksOf[a] = append(ranksOf[a], r)
	}
	var wg sync.WaitGroup
	for a := 0; a < p.nAgg; a++ {
		wg.Add(1)
		go func(ranks []int) {
			defer wg.Done()
			for _, r := range ranks {
				copy(global[p.dec.starts[r]:p.dec.starts[r+1]], parts[r])
			}
		}(ranksOf[a])
	}
	wg.Wait()

	st := Stats{Aggregators: p.nAgg}
	for a := 0; a < p.nAgg; a++ {
		if len(ranksOf[a]) > st.MaxFanIn {
			st.MaxFanIn = len(ranksOf[a])
		}
		for _, r := range ranksOf[a] {
			if p.aggOf[r] != a {
				continue
			}
			// Rank-local data destined for its own aggregator still crosses
			// the node boundary unless rank == aggregator lead; we charge
			// all non-lead traffic, matching PIO accounting.
			if r != ranks0(ranksOf[a]) {
				st.RankToAggBytes += units.Bytes(len(parts[r]) * elemBytes)
			}
		}
	}
	st.AggToDiskBytes = units.Bytes(p.dec.globalLen * elemBytes)
	return global, st, nil
}

func ranks0(ranks []int) int {
	if len(ranks) == 0 {
		return -1
	}
	return ranks[0]
}

package insituviz

import (
	"bytes"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"

	"insituviz/internal/core"
	"insituviz/internal/faults"
	"insituviz/internal/leakcheck"
	"insituviz/internal/livemodel"
	"insituviz/internal/telemetry"
	"insituviz/internal/trace"
)

// TestOnlineFitMatchesOfflineRegression is the estimator-equivalence
// acceptance criterion at the study level: replaying the full
// characterization campaign through the unbounded, undamped online
// estimator lands on core.FitRegression's coefficients to 1e-9 — the
// same comparison `modelfit -online` prints.
func TestOnlineFitMatchesOfflineRegression(t *testing.T) {
	base := ReferenceWorkload(Hours(8))
	ch, err := Characterize(CaddyPlatform(), base,
		[]Seconds{Hours(8), Hours(24), Hours(72)})
	if err != nil {
		t.Fatal(err)
	}
	wantTSim, wantAlpha, wantBeta, err := core.FitRegression(ch.Points)
	if err != nil {
		t.Fatal(err)
	}

	est := livemodel.New(livemodel.Config{
		Window: 0, Damping: 0,
		ZThreshold: math.Inf(1), HardZ: math.Inf(1), CUSUMThreshold: math.Inf(1),
	})
	for _, p := range ch.Points {
		est.Observe(livemodel.Observation{
			SIoGB: p.OutputGB,
			NViz:  float64(p.Images),
			T:     float64(p.Time),
		})
	}
	tsim, alpha, beta, ok := est.Coefficients()
	if !ok {
		t.Fatal("online estimator did not converge over the campaign")
	}
	rel := func(got, want float64) float64 {
		return math.Abs(got-want) / math.Max(1, math.Abs(want))
	}
	if d := rel(tsim, float64(wantTSim)); d > 1e-9 {
		t.Errorf("tsim online %g vs offline %g (rel %g)", tsim, float64(wantTSim), d)
	}
	if d := rel(alpha, wantAlpha); d > 1e-9 {
		t.Errorf("alpha online %g vs offline %g (rel %g)", alpha, wantAlpha, d)
	}
	if d := rel(beta, wantBeta); d > 1e-9 {
		t.Errorf("beta online %g vs offline %g (rel %g)", beta, wantBeta, d)
	}
}

// modelLiveRun runs the CI model-smoke configuration: the default chaos
// profile (which includes a live.io stall consulted only when a model is
// attached) with an estimator and tracer wired in.
func modelLiveRun(t *testing.T, seed uint64) (*LiveResult, *telemetry.Registry, *trace.Tracer) {
	t.Helper()
	plan, err := faults.Profile("default", seed)
	if err != nil {
		t.Fatal(err)
	}
	in, err := faults.New(plan)
	if err != nil {
		t.Fatal(err)
	}
	reg := telemetry.NewRegistry()
	tr := trace.New(trace.Options{})
	res, err := LiveRun(LiveConfig{
		Mode:             InSitu,
		MeshSubdivisions: 2,
		Steps:            64,
		SampleEverySteps: 8,
		OutputDir:        t.TempDir(),
		ImageWidth:       64,
		ImageHeight:      32,
		RenderRanks:      4,
		OrthoViews:       2,
		Telemetry:        reg,
		Tracer:           tr,
		Faults:           in,
		Model:            livemodel.New(livemodel.Config{Window: 256, Damping: 1e-9}),
	})
	if err != nil {
		t.Fatal(err)
	}
	return res, reg, tr
}

// TestLiveRunModelDeterministic is the tentpole acceptance criterion:
// two same-seed chaos runs produce byte-identical model snapshots and
// anomaly logs, the injected live.io stall surfaces as an io anomaly in
// the log, the telemetry counter, and a driver-lane trace Instant.
func TestLiveRunModelDeterministic(t *testing.T) {
	type outcome struct {
		json, log []byte
		res       *LiveResult
	}
	run := func() outcome {
		res, reg, tr := modelLiveRun(t, 7)
		if res.Model == nil {
			t.Fatal("LiveRun with Model attached returned no snapshot")
		}
		var j, l bytes.Buffer
		if err := res.Model.WriteJSON(&j); err != nil {
			t.Fatal(err)
		}
		if err := res.Model.WriteLog(&l); err != nil {
			t.Fatal(err)
		}

		if res.Model.AnomalyCounts.IO == 0 {
			t.Error("no io anomaly despite the injected live.io stall")
		}
		if got := reg.Counter("model.anomalies.io").Value(); got == 0 {
			t.Error("telemetry model.anomalies.io is 0")
		}
		if got := reg.Counter("model.observations").Value(); got != int64(res.Model.Observations) {
			t.Errorf("telemetry model.observations = %d, snapshot says %d", got, res.Model.Observations)
		}

		drv := tr.Snapshot().Lane("driver")
		if drv == nil {
			t.Fatal("no driver lane in trace")
		}
		found := false
		for _, in := range drv.Instants {
			if in.Name == "model.anomaly.io" {
				found = true
				break
			}
		}
		if !found {
			t.Error("no model.anomaly.io Instant on the driver lane")
		}
		return outcome{json: j.Bytes(), log: l.Bytes(), res: res}
	}

	a, b := run(), run()
	if !bytes.Equal(a.json, b.json) {
		t.Errorf("model JSON differs between same-seed runs:\n%s\nvs\n%s", a.json, b.json)
	}
	if !bytes.Equal(a.log, b.log) {
		t.Errorf("model anomaly log differs between same-seed runs:\n%s\nvs\n%s", a.log, b.log)
	}
}

// TestLiveRunModelConcurrentScrape feeds the estimator from the driver
// while hammering /model (and Coefficients) from scraping goroutines —
// the -race half of the observability contract — and leak-checks the
// shutdown.
func TestLiveRunModelConcurrentScrape(t *testing.T) {
	defer leakcheck.Check(t)()

	est := livemodel.New(livemodel.Config{Window: 64, Damping: 1e-9})
	ts := httptest.NewServer(est.Handler())
	defer ts.Close()

	done := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-done:
					return
				default:
				}
				resp, err := http.Get(ts.URL)
				if err != nil {
					t.Error(err)
					return
				}
				if _, err := io.Copy(io.Discard, resp.Body); err != nil {
					t.Error(err)
				}
				resp.Body.Close()
				est.Coefficients()
				est.Snapshot()
			}
		}()
	}

	reg := telemetry.NewRegistry()
	res, err := LiveRun(LiveConfig{
		Mode:             InSitu,
		MeshSubdivisions: 2,
		Steps:            32,
		SampleEverySteps: 8,
		OutputDir:        t.TempDir(),
		ImageWidth:       64,
		ImageHeight:      32,
		RenderRanks:      4,
		Telemetry:        reg,
		Model:            est,
	})
	close(done)
	wg.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if res.Model == nil || res.Model.Observations == 0 {
		t.Fatalf("model snapshot = %+v, want observations > 0", res.Model)
	}
}

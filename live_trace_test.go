package insituviz

import (
	"bytes"
	"math"
	"testing"

	"insituviz/internal/telemetry"
	"insituviz/internal/trace"
)

// tracedLiveRun runs a small live configuration with a tracer attached.
func tracedLiveRun(t *testing.T, mode Kind) (*LiveResult, *trace.Tracer) {
	t.Helper()
	tr := trace.New(trace.Options{})
	res, err := LiveRun(LiveConfig{
		Mode:             mode,
		MeshSubdivisions: 2,
		Steps:            24,
		SampleEverySteps: 8,
		OutputDir:        t.TempDir(),
		ImageWidth:       96,
		ImageHeight:      48,
		RenderRanks:      3,
		Tracer:           tr,
	})
	if err != nil {
		t.Fatal(err)
	}
	return res, tr
}

// TestLiveRunTraceAttribution is the acceptance criterion on the live
// stack: in both modes, the per-phase energies derived from the trace sum
// to the synthetic profile's energy within 1e-9 relative.
func TestLiveRunTraceAttribution(t *testing.T) {
	for _, mode := range []Kind{InSitu, PostProcessing} {
		res, _ := tracedLiveRun(t, mode)
		if res.Timeline == nil {
			t.Fatalf("%v: no timeline", mode)
		}
		if res.PowerProfile == nil || res.PhaseEnergy == nil {
			t.Fatalf("%v: no attribution (profile %v, energy %v)",
				mode, res.PowerProfile, res.PhaseEnergy)
		}
		var sum float64
		for _, p := range res.PhaseEnergy.Phases {
			sum += float64(p.Energy)
		}
		total := float64(res.PowerProfile.Energy())
		if d := math.Abs(sum-total) / total; d > 1e-9 {
			t.Errorf("%v: phase energies sum to %g, profile energy %g (rel %g)",
				mode, sum, total, d)
		}
		if sim := res.PhaseEnergy.Phase("sim.step"); sim.Time <= 0 || sim.Energy <= 0 {
			t.Errorf("%v: sim.step attribution = %+v", mode, sim)
		}
		if viz := res.PhaseEnergy.Phase("viz.sample"); viz.Time <= 0 {
			t.Errorf("%v: viz.sample attribution = %+v", mode, viz)
		}
	}
}

func TestLiveRunTraceLanes(t *testing.T) {
	res, _ := tracedLiveRun(t, PostProcessing)
	drv := res.Timeline.Lane("driver")
	if drv == nil {
		t.Fatal("no driver lane")
	}
	counts := map[string]int{}
	depth1 := map[string]bool{}
	for _, s := range drv.Spans {
		counts[s.Name]++
		if s.Depth > 0 {
			depth1[s.Name] = true
		}
		if s.Open {
			t.Errorf("span %q left open", s.Name)
		}
	}
	if counts["sim.step"] != 24 {
		t.Errorf("sim.step spans = %d, want 24", counts["sim.step"])
	}
	if counts["viz.sample"] != 3 || counts["io.dump"] != 3 || counts["io.read"] != 3 {
		t.Errorf("span counts = %v", counts)
	}
	// Hierarchy: the render and detect sub-phases nest inside viz.sample.
	if !depth1["viz.render"] || !depth1["viz.detect"] {
		t.Errorf("nested sub-spans missing: %v", depth1)
	}
	// One lane per rendering rank, each with one span per sample.
	for _, lane := range []string{"render.rank0", "render.rank1", "render.rank2"} {
		lt := res.Timeline.Lane(lane)
		if lt == nil || len(lt.Spans) != 3 {
			t.Errorf("lane %s = %+v", lane, lt)
		}
	}
}

func TestLiveRunTraceChromeExport(t *testing.T) {
	res, _ := tracedLiveRun(t, InSitu)
	var buf bytes.Buffer
	err := trace.WriteChrome(&buf, res.Timeline,
		trace.CounterTrack{Name: "node-model power", Profile: res.PowerProfile})
	if err != nil {
		t.Fatal(err)
	}
	events, counters, err := trace.ValidateChrome(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if events == 0 {
		t.Error("no events exported")
	}
	if counters != len(res.PowerProfile.Powers)+1 {
		t.Errorf("counter events = %d, want %d", counters, len(res.PowerProfile.Powers)+1)
	}
}

// TestLiveRunExternalRegistry: a caller-supplied registry receives the
// run's metrics (the -http wiring), and the snapshot still lands on the
// result.
func TestLiveRunExternalRegistry(t *testing.T) {
	reg := telemetry.NewRegistry()
	res, err := LiveRun(LiveConfig{
		Mode:             InSitu,
		MeshSubdivisions: 2,
		Steps:            8,
		SampleEverySteps: 8,
		OutputDir:        t.TempDir(),
		ImageWidth:       64,
		ImageHeight:      32,
		RenderRanks:      2,
		Telemetry:        reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := reg.Counter("ocean.steps").Value(); got != 8 {
		t.Errorf("external registry ocean.steps = %d, want 8", got)
	}
	if res.Telemetry.Counters["ocean.steps"] != 8 {
		t.Errorf("result snapshot ocean.steps = %d", res.Telemetry.Counters["ocean.steps"])
	}
	// No tracer: the trace-side results stay nil.
	if res.Timeline != nil || res.PhaseEnergy != nil || res.PowerProfile != nil {
		t.Error("untraced run produced trace results")
	}
}

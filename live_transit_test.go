package insituviz

import (
	"bytes"
	"io/fs"
	"net"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"insituviz/internal/faults"
	"insituviz/internal/intransit"
	"insituviz/internal/leakcheck"
	"insituviz/internal/telemetry"
)

// startTransitWorkers brings up n in-process viz workers writing into
// outDir's cinema directory — the same directory the live run commits its
// index over — and returns their addresses plus an idempotent teardown.
// Callers must defer the teardown after the leak check so the accept
// loops are drained before goroutines are counted.
func startTransitWorkers(t *testing.T, n int, outDir string) ([]string, func()) {
	t.Helper()
	addrs := make([]string, n)
	var closers []func()
	for i := 0; i < n; i++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatalf("listen: %v", err)
		}
		w, err := intransit.NewWorker(ln, intransit.WorkerConfig{
			OutDir:    filepath.Join(outDir, "cinema"),
			Telemetry: telemetry.NewRegistry(),
		})
		if err != nil {
			t.Fatalf("NewWorker: %v", err)
		}
		served := make(chan error, 1)
		go func() { served <- w.Serve() }()
		closers = append(closers, func() {
			w.Close()
			<-served
		})
		addrs[i] = w.Addr()
	}
	var once sync.Once
	return addrs, func() {
		once.Do(func() {
			for _, c := range closers {
				c()
			}
		})
	}
}

// transitLiveConfig is the shared run shape for the transport comparison
// tests: small enough to be quick, but with every frame kind enabled —
// composited equirect, ortho views, and the thresholded eddy-core frame.
func transitLiveConfig(outDir string, reg *telemetry.Registry) LiveConfig {
	return LiveConfig{
		Mode:             InSitu,
		MeshSubdivisions: 2,
		Steps:            32,
		SampleEverySteps: 8,
		OutputDir:        outDir,
		ImageWidth:       64,
		ImageHeight:      32,
		RenderRanks:      4,
		OrthoViews:       2,
		EddyCoreImages:   true,
		Telemetry:        reg,
	}
}

// readStore loads every file under dir's cinema directory keyed by its
// relative path, so two stores can be compared byte for byte.
func readStore(t *testing.T, dir string) map[string][]byte {
	t.Helper()
	root := filepath.Join(dir, "cinema")
	files := map[string][]byte{}
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil || d.IsDir() {
			return err
		}
		rel, err := filepath.Rel(root, path)
		if err != nil {
			return err
		}
		b, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		files[rel] = b
		return nil
	})
	if err != nil {
		t.Fatalf("walk %s: %v", root, err)
	}
	return files
}

// requireIdenticalStores is the in-transit correctness contract: the
// committed Cinema database — index and every frame — must not depend on
// the transport that produced it.
func requireIdenticalStores(t *testing.T, inprocDir, tcpDir string) {
	t.Helper()
	inproc, tcp := readStore(t, inprocDir), readStore(t, tcpDir)
	if len(inproc) == 0 {
		t.Fatal("inproc store is empty")
	}
	for rel, want := range inproc {
		got, ok := tcp[rel]
		if !ok {
			t.Errorf("tcp store missing %s", rel)
			continue
		}
		if !bytes.Equal(got, want) {
			t.Errorf("%s differs between transports (%d vs %d bytes)", rel, len(want), len(got))
		}
	}
	for rel := range tcp {
		if _, ok := inproc[rel]; !ok {
			t.Errorf("tcp store has extra file %s", rel)
		}
	}
}

// TestLiveTransitByteIdentity runs the same seeded configuration through
// the in-process renderer and through two TCP viz workers, and requires
// the two committed stores to be byte-identical. It also pins the
// acceptance bound on wire compression: the shipped bytes must be at
// most 70% of the float64 field volume they stand in for.
func TestLiveTransitByteIdentity(t *testing.T) {
	defer leakcheck.Check(t)()

	inprocDir := t.TempDir()
	inprocReg := telemetry.NewRegistry()
	if _, err := LiveRun(transitLiveConfig(inprocDir, inprocReg)); err != nil {
		t.Fatalf("inproc run: %v", err)
	}

	tcpDir := t.TempDir()
	tcpReg := telemetry.NewRegistry()
	cfg := transitLiveConfig(tcpDir, tcpReg)
	cfg.Transport = "tcp"
	var closeWorkers func()
	cfg.VizWorkers, closeWorkers = startTransitWorkers(t, 2, tcpDir)
	defer closeWorkers()
	res, err := LiveRun(cfg)
	if err != nil {
		t.Fatalf("tcp run: %v", err)
	}
	if res.Images == 0 {
		t.Fatal("tcp run committed no images")
	}
	if res.DroppedSamples != 0 {
		t.Fatalf("clean tcp run dropped %d samples", res.DroppedSamples)
	}

	requireIdenticalStores(t, inprocDir, tcpDir)

	raw := tcpReg.Counter("transit.bytes.raw").Value()
	wire := tcpReg.Counter("transit.bytes.wire").Value()
	if raw == 0 || wire == 0 {
		t.Fatalf("byte counters not populated: raw=%d wire=%d", raw, wire)
	}
	ratio := tcpReg.FloatGauge("transit.compression.ratio").Value()
	if ratio <= 0 || ratio > 0.7 {
		t.Errorf("compression ratio %.3f, want in (0, 0.7]", ratio)
	}
	if got := float64(wire) / float64(raw); got > 0.7 {
		t.Errorf("wire/raw = %.3f, want <= 0.7", got)
	}
}

// TestLiveTransitChaos runs the tcp transport under the "transit" fault
// profile — dropped sends, injected wire delay, and a worker partition —
// and requires the run to finish with zero client-visible errors and zero
// dropped samples: every fault is absorbed by reconnect-with-resume or
// failover, and the committed store is still byte-identical to a clean
// in-process run of the same configuration.
func TestLiveTransitChaos(t *testing.T) {
	defer leakcheck.Check(t)()

	inprocDir := t.TempDir()
	if _, err := LiveRun(transitLiveConfig(inprocDir, telemetry.NewRegistry())); err != nil {
		t.Fatalf("inproc run: %v", err)
	}

	plan, err := faults.Profile("transit", 11)
	if err != nil {
		t.Fatalf("faults.Profile: %v", err)
	}
	in, err := faults.New(plan)
	if err != nil {
		t.Fatalf("faults.New: %v", err)
	}
	tcpDir := t.TempDir()
	reg := telemetry.NewRegistry()
	cfg := transitLiveConfig(tcpDir, reg)
	cfg.Transport = "tcp"
	var closeWorkers func()
	cfg.VizWorkers, closeWorkers = startTransitWorkers(t, 2, tcpDir)
	defer closeWorkers()
	cfg.Faults = in
	res, err := LiveRun(cfg)
	if err != nil {
		t.Fatalf("chaos tcp run: %v", err)
	}
	if res.DroppedSamples != 0 || res.DroppedFrames != 0 {
		t.Fatalf("chaos run dropped %d samples / %d frames, want none",
			res.DroppedSamples, res.DroppedFrames)
	}
	if got := reg.Counter("transit.reconnects").Value(); got == 0 {
		t.Error("transit.reconnects = 0, want > 0 under the transit profile")
	}
	if got := reg.Counter("transit.faults.drop").Value(); got == 0 {
		t.Error("transit.faults.drop = 0, want > 0 under the transit profile")
	}
	if ratio := reg.FloatGauge("transit.compression.ratio").Value(); ratio <= 0 || ratio > 0.7 {
		t.Errorf("compression ratio %.3f, want in (0, 0.7]", ratio)
	}

	requireIdenticalStores(t, inprocDir, tcpDir)
}

package insituviz

import (
	"math"
	"os"
	"path/filepath"
	"testing"

	"insituviz/internal/ncfile"
	"insituviz/internal/render"
)

func TestReproduceStudy(t *testing.T) {
	st, err := ReproduceStudy(CaddyPlatform())
	if err != nil {
		t.Fatal(err)
	}
	if len(st.Characterization.Points) != 6 {
		t.Fatalf("points = %d", len(st.Characterization.Points))
	}
	// Headline results of the paper's abstract: the in-situ pipeline runs
	// ~51% faster, uses ~50% less energy, and ~99.5% less disk at the
	// 8-hour sampling rate, while power stays flat.
	post, ok1 := st.Characterization.Find(PostProcessing, Hours(8))
	insitu, ok2 := st.Characterization.Find(InSitu, Hours(8))
	if !ok1 || !ok2 {
		t.Fatal("missing 8h configurations")
	}
	timeSaving := 1 - float64(insitu.Time)/float64(post.Time)
	if timeSaving < 0.45 || timeSaving > 0.58 {
		t.Errorf("time saving = %.1f%%, paper says 51%%", timeSaving*100)
	}
	energySaving := 1 - float64(insitu.Energy)/float64(post.Energy)
	if energySaving < 0.45 || energySaving > 0.58 {
		t.Errorf("energy saving = %.1f%%, paper says 50%%", energySaving*100)
	}
	storageSaving := 1 - float64(insitu.Storage)/float64(post.Storage)
	if storageSaving < 0.995 {
		t.Errorf("storage saving = %.3f%%, paper says > 99.5%%", storageSaving*100)
	}
	powerDiff := math.Abs(float64(post.Power-insitu.Power)) / float64(insitu.Power)
	if powerDiff > 0.03 {
		t.Errorf("power difference = %.2f%%, paper says none", powerDiff*100)
	}
	// Model validation matches the paper's <0.5% absolute error.
	if st.Validation.MaxAPE > 0.5 {
		t.Errorf("model max APE = %.3f%%", st.Validation.MaxAPE)
	}
	if math.Abs(st.Model.Alpha-6.25) > 0.3 || math.Abs(st.Model.Beta-1.2) > 0.1 {
		t.Errorf("model coefficients = (%.3g, %.3g), want ~(6.25, 1.2)", st.Model.Alpha, st.Model.Beta)
	}
}

func TestFacadeHelpers(t *testing.T) {
	if Hours(2) != 7200 || Minutes(1) != 60 || Days(1) != 86400 || Years(1) != 365*86400 {
		t.Error("time helpers wrong")
	}
	if Gigabytes(1) != 1e9 || Terabytes(1) != 1e12 {
		t.Error("size helpers wrong")
	}
	w := ReferenceWorkload(Hours(8))
	if w.Outputs() != 540 {
		t.Errorf("reference outputs = %d", w.Outputs())
	}
	if _, err := RunPipeline(InSitu, w, CaddyPlatform()); err != nil {
		t.Fatal(err)
	}
}

func TestLiveRunValidation(t *testing.T) {
	if _, err := LiveRun(LiveConfig{}); err == nil {
		t.Error("missing output dir accepted")
	}
	if _, err := LiveRun(LiveConfig{OutputDir: t.TempDir(), Steps: -1}); err == nil {
		t.Error("negative steps accepted")
	}
	if _, err := LiveRun(LiveConfig{OutputDir: t.TempDir(), Mode: Kind(9), Steps: 1, SampleEverySteps: 1, MeshSubdivisions: 1}); err == nil {
		t.Error("unknown mode accepted")
	}
}

func TestLiveRunInSitu(t *testing.T) {
	dir := t.TempDir()
	res, err := LiveRun(LiveConfig{
		Mode:             InSitu,
		MeshSubdivisions: 2, // 162 cells: fast
		Steps:            24,
		SampleEverySteps: 8,
		OutputDir:        dir,
		ImageWidth:       96,
		ImageHeight:      48,
		RenderRanks:      3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Samples != 3 || res.Images != 3 {
		t.Errorf("samples = %d, images = %d, want 3 each", res.Samples, res.Images)
	}
	if res.ImageBytes <= 0 {
		t.Error("no image bytes written")
	}
	if res.RawBytes != 0 {
		t.Error("in-situ mode wrote raw dumps")
	}
	if res.MaxVelocity <= 0 || res.MaxVelocity > 300 {
		t.Errorf("max velocity = %v", res.MaxVelocity)
	}
	// The Cinema database must exist and index all images.
	entries, err := render.ReadCinemaIndex(filepath.Join(dir, "cinema"))
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 3 {
		t.Errorf("cinema index has %d entries", len(entries))
	}
	for _, e := range entries {
		data, err := os.ReadFile(filepath.Join(dir, "cinema", e.File))
		if err != nil {
			t.Fatal(err)
		}
		if len(data) < 8 || string(data[1:4]) != "PNG" {
			t.Errorf("%s is not a PNG", e.File)
		}
	}
	if len(res.EddiesPerSample) != 3 {
		t.Errorf("eddy census has %d samples", len(res.EddiesPerSample))
	}
}

func TestLiveRunPostProcessing(t *testing.T) {
	dir := t.TempDir()
	res, err := LiveRun(LiveConfig{
		Mode:             PostProcessing,
		MeshSubdivisions: 2,
		Steps:            16,
		SampleEverySteps: 8,
		OutputDir:        dir,
		ImageWidth:       96,
		ImageHeight:      48,
		RenderRanks:      2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Samples != 2 || res.Images != 2 {
		t.Errorf("samples = %d, images = %d", res.Samples, res.Images)
	}
	if res.RawBytes <= 0 {
		t.Error("no raw dumps written")
	}
	// Raw dumps dominate images in size, the core asymmetry of the study:
	// here each dump is 3 doubles per cell while a PNG is tiny.
	if res.RawBytes < res.ImageBytes {
		t.Logf("note: raw %v vs images %v (small grid)", res.RawBytes, res.ImageBytes)
	}
	// The dumps must be genuine netCDF files that decode.
	matches, err := filepath.Glob(filepath.Join(dir, "raw", "*.nc"))
	if err != nil || len(matches) != 2 {
		t.Fatalf("raw dumps = %v (%v)", matches, err)
	}
	f, err := ncfile.ReadFile(matches[0])
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.VarID("okuboWeiss"); err != nil {
		t.Error("dump missing okuboWeiss variable")
	}
	if _, err := f.VarID("latCell"); err != nil {
		t.Error("dump missing latCell variable")
	}
}

func TestLiveRunModesProduceSameImages(t *testing.T) {
	// In-situ and post-processing visualize the same physics; with
	// identical configuration the rendered images must be byte-identical —
	// the "cognitive fidelity" equivalence the paper's abstract claims.
	mk := func(mode Kind) []byte {
		dir := t.TempDir()
		_, err := LiveRun(LiveConfig{
			Mode:             mode,
			MeshSubdivisions: 2,
			Steps:            8,
			SampleEverySteps: 8,
			OutputDir:        dir,
			ImageWidth:       64,
			ImageHeight:      32,
			RenderRanks:      2,
		})
		if err != nil {
			t.Fatal(err)
		}
		entries, err := render.ReadCinemaIndex(filepath.Join(dir, "cinema"))
		if err != nil || len(entries) != 1 {
			t.Fatalf("index = %v (%v)", entries, err)
		}
		data, err := os.ReadFile(filepath.Join(dir, "cinema", entries[0].File))
		if err != nil {
			t.Fatal(err)
		}
		return data
	}
	a := mk(InSitu)
	b := mk(PostProcessing)
	if len(a) != len(b) {
		t.Fatalf("image sizes differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("images differ at byte %d", i)
		}
	}
}

func TestLiveRunOrthoViews(t *testing.T) {
	dir := t.TempDir()
	res, err := LiveRun(LiveConfig{
		Mode:             InSitu,
		MeshSubdivisions: 2,
		Steps:            8,
		SampleEverySteps: 8,
		OutputDir:        dir,
		ImageWidth:       64,
		ImageHeight:      32,
		RenderRanks:      2,
		OrthoViews:       3,
	})
	if err != nil {
		t.Fatal(err)
	}
	// One equirectangular image plus three globe views per sample.
	if res.Images != 4 {
		t.Errorf("images = %d, want 4 (1 map + 3 views)", res.Images)
	}
	entries, err := render.ReadCinemaIndex(filepath.Join(dir, "cinema"))
	if err != nil {
		t.Fatal(err)
	}
	fields := map[string]int{}
	for _, e := range entries {
		fields[e.Field]++
	}
	if fields["okubo_weiss"] != 1 || fields["okubo_weiss_view0"] != 1 || fields["okubo_weiss_view2"] != 1 {
		t.Errorf("cinema fields = %v", fields)
	}
}

func TestLiveRunEddyCoreImages(t *testing.T) {
	dir := t.TempDir()
	res, err := LiveRun(LiveConfig{
		Mode:             InSitu,
		MeshSubdivisions: 2,
		Steps:            16,
		SampleEverySteps: 8,
		OutputDir:        dir,
		ImageWidth:       64,
		ImageHeight:      32,
		RenderRanks:      2,
		EddyCoreImages:   true,
	})
	if err != nil {
		t.Fatal(err)
	}
	entries, err := render.ReadCinemaIndex(filepath.Join(dir, "cinema"))
	if err != nil {
		t.Fatal(err)
	}
	fields := map[string]int{}
	for _, e := range entries {
		fields[e.Field]++
	}
	if fields["okubo_weiss"] != 2 {
		t.Errorf("base images = %d, want 2", fields["okubo_weiss"])
	}
	if fields["okubo_weiss_cores"] != 2 {
		t.Errorf("core images = %d, want 2", fields["okubo_weiss_cores"])
	}
	if res.Images != 4 {
		t.Errorf("total images = %d, want 4", res.Images)
	}
	if res.HaloBytesPerField <= 0 {
		t.Errorf("halo bytes = %v", res.HaloBytesPerField)
	}
}

func TestLiveRunRossbyScenario(t *testing.T) {
	res, err := LiveRun(LiveConfig{
		Mode:             InSitu,
		Scenario:         "rossby",
		MeshSubdivisions: 2,
		Steps:            8,
		SampleEverySteps: 4,
		OutputDir:        t.TempDir(),
		ImageWidth:       64,
		ImageHeight:      32,
		RenderRanks:      2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Samples != 2 {
		t.Errorf("samples = %d", res.Samples)
	}
	// The Rossby-Haurwitz wave spins fast from the start.
	if res.MaxVelocity < 20 {
		t.Errorf("rossby max velocity = %v, expected a vigorous wave", res.MaxVelocity)
	}
	if _, err := LiveRun(LiveConfig{Scenario: "bogus", OutputDir: t.TempDir(),
		MeshSubdivisions: 1, Steps: 1, SampleEverySteps: 1}); err == nil {
		t.Error("unknown scenario accepted")
	}
}

func TestFacadeInTransit(t *testing.T) {
	w := ReferenceWorkload(Hours(72))
	p := CaddyPlatform()
	p.StagingNodes = 50
	m, err := RunPipeline(InTransit, w, p)
	if err != nil {
		t.Fatal(err)
	}
	if m.Kind != InTransit {
		t.Errorf("kind = %v", m.Kind)
	}
	if m.Kind.String() != "in-transit" {
		t.Errorf("kind name = %q", m.Kind.String())
	}
	if m.Outputs != 60 {
		t.Errorf("outputs = %d", m.Outputs)
	}
}

// TestLiveCoupledTelemetryInSitu exercises the tentpole contract of the
// telemetry subsystem: a live coupled run must account for its own phases —
// nonzero step, render, and copy counters whose values agree with the
// independently computed LiveResult fields.
func TestLiveCoupledTelemetryInSitu(t *testing.T) {
	res, err := LiveRun(LiveConfig{
		Mode:             InSitu,
		MeshSubdivisions: 2,
		Steps:            24,
		SampleEverySteps: 8,
		OutputDir:        t.TempDir(),
		ImageWidth:       96,
		ImageHeight:      48,
	})
	if err != nil {
		t.Fatal(err)
	}
	snap := res.Telemetry
	if snap == nil {
		t.Fatal("LiveResult.Telemetry is nil")
	}
	if got := snap.Counters["ocean.steps"]; got != int64(res.Steps) {
		t.Errorf("ocean.steps = %d, want %d", got, res.Steps)
	}
	if got := snap.Counters["render.frames"]; got != int64(res.Images) {
		t.Errorf("render.frames = %d, want %d", got, res.Images)
	}
	if got := snap.Counters["render.encoded.bytes"]; got != int64(res.ImageBytes) {
		t.Errorf("render.encoded.bytes = %d, want %d", got, res.ImageBytes)
	}
	if got := snap.Counters["catalyst.invocations"]; got != int64(res.Samples) {
		t.Errorf("catalyst.invocations = %d, want %d", got, res.Samples)
	}
	if snap.Counters["catalyst.copied.bytes"] <= 0 {
		t.Error("catalyst.copied.bytes is zero")
	}
	// The reuse contract: every invocation after the first serves the
	// retained snapshot buffer.
	if got := snap.Counters["catalyst.reuse.hits"]; got != int64(res.Samples-1) {
		t.Errorf("catalyst.reuse.hits = %d, want %d", got, res.Samples-1)
	}
	// Spans: every step is counted, only a sampled subset is timed; every
	// sampling point is both counted and timed (period 1).
	st, ok := snap.Spans["ocean.step.time"]
	if !ok {
		t.Fatal("ocean.step.time span missing")
	}
	if st.Entries != int64(res.Steps) {
		t.Errorf("ocean.step.time entries = %d, want %d", st.Entries, res.Steps)
	}
	if st.Sampled == 0 || st.Sampled > st.Entries {
		t.Errorf("ocean.step.time sampled = %d of %d", st.Sampled, st.Entries)
	}
	if st.SampledNanos <= 0 || st.EstimatedNanos < st.SampledNanos {
		t.Errorf("ocean.step.time nanos: sampled %d, estimated %d", st.SampledNanos, st.EstimatedNanos)
	}
	sv := snap.Spans["live.sample.time"]
	if sv.Entries != int64(res.Samples) || sv.Sampled != sv.Entries {
		t.Errorf("live.sample.time = %+v, want %d entries all sampled", sv, res.Samples)
	}
	// The frame-size histogram saw every encoded frame.
	hv := snap.Histograms["render.frame.bytes"]
	if hv.Count != int64(res.Images) {
		t.Errorf("render.frame.bytes count = %d, want %d", hv.Count, res.Images)
	}
	if hv.Sum != float64(res.ImageBytes) {
		t.Errorf("render.frame.bytes sum = %g, want %d", hv.Sum, res.ImageBytes)
	}
	// In-situ writes no raw dumps, and the mode's defining counters say so.
	if snap.Counters["live.raw.bytes"] != 0 {
		t.Errorf("live.raw.bytes = %d in in-situ mode", snap.Counters["live.raw.bytes"])
	}
}

// TestLiveCoupledTelemetryPost checks the post-processing side: the dump
// and readback traffic is accounted and matches LiveResult.RawBytes.
func TestLiveCoupledTelemetryPost(t *testing.T) {
	res, err := LiveRun(LiveConfig{
		Mode:             PostProcessing,
		MeshSubdivisions: 2,
		Steps:            16,
		SampleEverySteps: 8,
		OutputDir:        t.TempDir(),
		ImageWidth:       96,
		ImageHeight:      48,
	})
	if err != nil {
		t.Fatal(err)
	}
	snap := res.Telemetry
	if snap == nil {
		t.Fatal("LiveResult.Telemetry is nil")
	}
	if got := snap.Counters["live.raw.bytes"]; got != int64(res.RawBytes) {
		t.Errorf("live.raw.bytes = %d, want %d", got, res.RawBytes)
	}
	if got := snap.Counters["live.raw.dumps"]; got != int64(res.Samples) {
		t.Errorf("live.raw.dumps = %d, want %d", got, res.Samples)
	}
	// Fig. 1a reads back exactly what it dumped.
	if got := snap.Counters["live.readback.bytes"]; got != int64(res.RawBytes) {
		t.Errorf("live.readback.bytes = %d, want %d", got, res.RawBytes)
	}
	if got := snap.Counters["render.frames"]; got != int64(res.Images) {
		t.Errorf("render.frames = %d, want %d", got, res.Images)
	}
	if got := snap.Counters["ocean.steps"]; got != int64(res.Steps) {
		t.Errorf("ocean.steps = %d, want %d", got, res.Steps)
	}
	// Post-processing mode has no catalyst adaptor in the loop.
	if snap.Counters["catalyst.invocations"] != 0 {
		t.Errorf("catalyst.invocations = %d in post mode", snap.Counters["catalyst.invocations"])
	}
}

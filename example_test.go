package insituviz_test

import (
	"fmt"

	"insituviz"
)

// ExampleReproduceStudy reproduces the paper's headline comparison at the
// 8-simulated-hour sampling rate. The simulated platform is deterministic,
// so the numbers are stable.
func ExampleReproduceStudy() {
	st, err := insituviz.ReproduceStudy(insituviz.CaddyPlatform())
	if err != nil {
		fmt.Println(err)
		return
	}
	post, _ := st.Characterization.Find(insituviz.PostProcessing, insituviz.Hours(8))
	insitu, _ := st.Characterization.Find(insituviz.InSitu, insituviz.Hours(8))
	fmt.Printf("in-situ is %.0f%% faster\n", 100*(1-float64(insitu.Time)/float64(post.Time)))
	fmt.Printf("in-situ saves %.0f%% energy\n", 100*(1-float64(insitu.Energy)/float64(post.Energy)))
	fmt.Printf("storage: %v -> %v\n", post.Storage, insitu.Storage)
	fmt.Printf("model: t_sim=%.0f s, alpha=%.2f s/GB, beta=%.2f s/set\n",
		float64(st.Model.TSimRef), st.Model.Alpha, st.Model.Beta)
	// Output:
	// in-situ is 53% faster
	// in-situ saves 53% energy
	// storage: 230.60 GB -> 600.00 MB
	// model: t_sim=603 s, alpha=6.25 s/GB, beta=1.20 s/set
}

// ExampleModel_FinestIntervalUnderStorageBudget answers the paper's Fig. 9
// question: the finest post-processing output rate a 100-year simulation
// can sustain in a 2 TB allocation.
func ExampleModel_FinestIntervalUnderStorageBudget() {
	st, err := insituviz.ReproduceStudy(insituviz.CaddyPlatform())
	if err != nil {
		fmt.Println(err)
		return
	}
	iv, err := st.Model.FinestIntervalUnderStorageBudget(
		insituviz.PostProcessing, insituviz.Years(100), insituviz.Terabytes(2))
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Printf("one output every %.1f days (paper: ~8 days)\n", float64(iv)/86400)
	// Output:
	// one output every 7.8 days (paper: ~8 days)
}

// ExampleRecommend runs the Section VII automated framework: given a
// storage budget and a science requirement, it picks the pipeline and the
// sampling rate.
func ExampleRecommend() {
	st, err := insituviz.ReproduceStudy(insituviz.CaddyPlatform())
	if err != nil {
		fmt.Println(err)
		return
	}
	rec, err := insituviz.Recommend(st.Model, insituviz.Years(100), insituviz.Minutes(30),
		insituviz.Constraints{
			StorageBudget:        insituviz.Terabytes(2),
			RequiredInterval:     insituviz.Days(1),
			FinestUsefulInterval: insituviz.Days(1),
		})
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Printf("use %v, one output per %v, needs %v\n", rec.Kind, rec.Interval, rec.Storage)
	// Output:
	// use in-situ, one output per 1.00 d, needs 40.56 GB
}

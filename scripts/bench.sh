#!/bin/sh
# Record the next BENCH_<n>.json performance snapshot and diff it against
# the previous one. Runs the hot-loop benchmarks of the live coupled stack
# (BenchmarkLiveCoupledRun and its Traced variant, BenchmarkStep642Cells
# and its Traced variant, BenchmarkStepParallel10242Cells — a full
# serial/workers{1,2,4,8} solver scaling matrix) plus the Cinema serving
# path (BenchmarkCinemaServeHot — the 0 allocs/op cached fetch — and
# BenchmarkCinemaLoadMixed, the Zipf hit/miss/evict blend) and the
# in-transit wire hot path (BenchmarkTransitLoopback/{flate,raw} —
# shard encode, delta, codec, framing, and decode; the raw sub-bench
# pins 0 allocs/op in steady state) and the content-addressed commit
# path (BenchmarkCommitHashed — index encode, Merkle root, atomic index
# write, fsync'd manifest append) with -benchmem.
#
# On top of the snapshot diff, benchsnap checks the scaling matrix: on a
# host with >= 4 cores, workers4 should beat serial by 1.3x, and workers8
# must never be meaningfully slower than workers4. The check is advisory
# (a warning) unless -scaling-fail is passed.
#
# Usage, from the repository root:
#
#   scripts/bench.sh                 # snapshot + diff + advisory scaling check
#   scripts/bench.sh -fail-over 0.10 # also fail on a >10% regression
#   scripts/bench.sh -scaling-fail   # make the scaling check a hard gate
#
# Extra arguments are passed through to benchsnap (see cmd/benchsnap).
set -eu

cd "$(dirname "$0")/.."
exec go run ./cmd/benchsnap "$@"

#!/bin/sh
# Record the next BENCH_<n>.json performance snapshot and diff it against
# the previous one. Runs the hot-loop benchmarks of the live coupled stack
# (BenchmarkLiveCoupledRun and its Traced variant, BenchmarkStep642Cells
# and its Traced variant, BenchmarkStepParallel10242Cells) plus the Cinema
# serving path (BenchmarkCinemaServeHot — the 0 allocs/op cached fetch —
# and BenchmarkCinemaLoadMixed, the Zipf hit/miss/evict blend) with
# -benchmem.
#
# Usage, from the repository root:
#
#   scripts/bench.sh                 # snapshot + diff
#   scripts/bench.sh -fail-over 0.10 # also fail on a >10% regression
#
# Extra arguments are passed through to benchsnap (see cmd/benchsnap).
set -eu

cd "$(dirname "$0")/.."
exec go run ./cmd/benchsnap "$@"

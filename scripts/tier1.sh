#!/bin/sh
# Tier-1 gate: everything must pass before a change lands.
#   - build every package
#   - go vet
#   - full test suite
#   - full test suite again under the race detector (the worker pool and
#     frame-reuse paths are concurrency-sensitive)
set -eu

cd "$(dirname "$0")/.."

echo "== go build ./..."
go build ./...

echo "== go vet ./..."
go vet ./...

echo "== go test ./..."
go test ./...

echo "== go test -race ./..."
go test -race ./...

echo "tier-1: all green"

// Command powerchar reproduces the paper's Section V power-proportionality
// characterization: it probes the storage rack and the compute cluster at
// idle and at full load, and sweeps compute utilization — the measurements
// that explain why in-situ techniques cannot save storage power
// (Finding 2) nor harness trapped capacity (Finding 3).
package main

import (
	"flag"
	"fmt"
	"log"

	"insituviz/internal/clustersim"
	"insituviz/internal/lustre"
	"insituviz/internal/report"
	"insituviz/internal/units"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("powerchar: ")
	steps := flag.Int("sweep-steps", 5, "number of utilization points in the compute sweep")
	flag.Parse()
	if *steps < 2 {
		log.Fatal("-sweep-steps must be at least 2")
	}

	storage, err := lustre.New(lustre.CaddyStorage())
	if err != nil {
		log.Fatal(err)
	}
	machine, err := clustersim.New(clustersim.Caddy())
	if err != nil {
		log.Fatal(err)
	}

	tb := report.NewTable("Power proportionality (paper Section V)",
		"subsystem", "idle", "full load", "dynamic range")
	scfg := storage.Config()
	tb.AddRow("storage rack (Lustre, 5 nodes)",
		scfg.IdlePower.String(), scfg.BusyPower.String(),
		report.Pct(storage.PowerProportionality()))
	tb.AddRow("compute cluster (150 nodes)",
		machine.IdlePower().String(), machine.BusyPower().String(),
		report.Pct(machine.PowerProportionality()))
	fmt.Print(tb.String())
	fmt.Println()

	sweep := report.NewTable("Compute power vs utilization", "utilization", "cluster power")
	for i := 0; i < *steps; i++ {
		u := float64(i) / float64(*steps-1)
		sweep.AddRow(report.Pct(u), machine.PowerAt(u).String())
	}
	fmt.Print(sweep.String())
	fmt.Println()

	// Demonstrate the storage rack's insensitivity to load: write at full
	// bandwidth for five minutes and compare against five idle minutes.
	if _, err := storage.Write("probe.dat", units.Bytes(float64(scfg.Bandwidth)*300), 300); err != nil {
		log.Fatal(err)
	}
	tr, err := storage.PowerTrace(600)
	if err != nil {
		log.Fatal(err)
	}
	idleAvg, err := tr.AverageOver(0, 300)
	if err != nil {
		log.Fatal(err)
	}
	busyAvg, err := tr.AverageOver(300, 600)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("storage rack, 5 idle minutes:      %v\n", idleAvg)
	fmt.Printf("storage rack, 5 full-load minutes: %v\n", busyAvg)
	fmt.Printf("=> cutting storage traffic to zero recovers only %v of power;\n", busyAvg-idleAvg)
	fmt.Println("   the paper's Finding 2: in-situ cannot lower storage power.")
}

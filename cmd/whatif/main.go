// Command whatif answers the paper's Section VII scenario questions with
// the fitted model: how much storage and energy does a long climate
// simulation need at each output sampling rate, and what is the finest
// rate that fits a storage or energy budget (Figs. 9 and 10)?
package main

import (
	"flag"
	"fmt"
	"log"

	"insituviz"
	"insituviz/internal/report"
	"insituviz/internal/tempsample"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("whatif: ")
	years := flag.Float64("years", 100, "simulated duration in years")
	budgetTB := flag.Float64("storage-budget-tb", 2, "per-user storage budget in TB")
	energyBudgetGJ := flag.Float64("energy-budget-gj", 0, "optional energy budget in GJ (0 disables)")
	eddyMeanDays := flag.Float64("eddy-mean-days", 0, "optional mean eddy lifetime in days; derives the science-required sampling rate (0 disables)")
	minObs := flag.Int("min-observations", 100, "observations needed per eddy for tracking (with -eddy-mean-days)")
	coverage := flag.Float64("coverage", 0.9, "fraction of eddies that must be adequately observed (with -eddy-mean-days)")
	flag.Parse()

	st, err := insituviz.ReproduceStudy(insituviz.CaddyPlatform())
	if err != nil {
		log.Fatal(err)
	}
	model := st.Model
	duration := insituviz.Years(*years)
	timestep := insituviz.Minutes(30)

	intervals := []insituviz.Seconds{
		insituviz.Hours(1), insituviz.Hours(4), insituviz.Hours(8), insituviz.Hours(12),
		insituviz.Hours(24), insituviz.Days(2), insituviz.Days(4), insituviz.Days(8),
		insituviz.Days(16),
	}
	pts, err := model.SweepRates(duration, timestep, intervals)
	if err != nil {
		log.Fatal(err)
	}

	budget := insituviz.Terabytes(*budgetTB)
	tb := report.NewTable(
		fmt.Sprintf("Storage and energy vs sampling rate — %g-year simulation (Figs. 9-10)", *years),
		"output every", "post storage", "in-situ storage", "post energy", "in-situ energy", "in-situ saves")
	for _, p := range pts {
		tb.AddRow(p.Interval.String(),
			p.PostStorage.String(), p.InSituStorage.String(),
			p.PostEnergy.String(), p.InSituEnergy.String(),
			report.Pct(p.EnergySavings))
	}
	fmt.Print(tb.String())
	fmt.Println()

	for _, kind := range []insituviz.Kind{insituviz.PostProcessing, insituviz.InSitu} {
		iv, err := model.FinestIntervalUnderStorageBudget(kind, duration, budget)
		if err != nil {
			fmt.Printf("%v: no sampling rate fits %v (%v)\n", kind, budget, err)
			continue
		}
		fmt.Printf("%v: finest sampling under a %v budget = one output every %v\n", kind, budget, iv)
	}

	if *eddyMeanDays > 0 {
		lifetimes, err := tempsample.SyntheticLifetimes(5000, *eddyMeanDays*86400, 42)
		if err != nil {
			log.Fatal(err)
		}
		req := tempsample.Requirement{MinObservations: *minObs, Coverage: *coverage}
		iv, err := tempsample.CoarsestInterval(lifetimes, req)
		if err != nil {
			log.Fatalf("science requirement infeasible: %v", err)
		}
		fmt.Println()
		fmt.Printf("science requirement (%d obs for %.0f%% of eddies, mean life %g d): sample every %v\n",
			*minObs, *coverage*100, *eddyMeanDays, insituviz.Seconds(iv))
		for _, kind := range []insituviz.Kind{insituviz.PostProcessing, insituviz.InSitu} {
			s, err := model.Storage(kind, duration, insituviz.Seconds(iv))
			if err != nil {
				log.Fatal(err)
			}
			e, err := model.Energy(kind, duration, timestep, insituviz.Seconds(iv))
			if err != nil {
				log.Fatal(err)
			}
			fits := "fits"
			if s > budget {
				fits = "EXCEEDS"
			}
			fmt.Printf("  %-16v needs %v (%s the %v budget) and %v\n", kind, s, fits, budget, e)
		}
	}

	if *energyBudgetGJ > 0 {
		eb := insituviz.Joules(*energyBudgetGJ * 1e9)
		fmt.Println()
		for _, kind := range []insituviz.Kind{insituviz.PostProcessing, insituviz.InSitu} {
			iv, err := model.FinestIntervalUnderEnergyBudget(kind, duration, timestep, eb)
			if err != nil {
				fmt.Printf("%v: energy budget %g GJ is infeasible (%v)\n", kind, *energyBudgetGJ, err)
				continue
			}
			fmt.Printf("%v: finest sampling under %g GJ = one output every %v\n", kind, *energyBudgetGJ, iv)
		}
	}
}

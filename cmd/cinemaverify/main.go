// Command cinemaverify audits the end-to-end integrity of one or more
// Cinema stores: every frame on disk is re-read and checked against its
// indexed length and content digest, and the provenance manifest — the
// hash-chained, Merkle-rooted commit ledger written alongside the index
// — is replayed link by link and matched against the live index.
//
// The tool is the offline half of the integrity story: the serving
// stack detects and quarantines rot at read time (see cinemaserve's
// scrubber and the cluster gateway's replica repair); cinemaverify is
// what an operator runs against a store at rest — after a transfer,
// before an archive, or when a scrub counter starts moving — to get a
// yes/no answer and, on no, the name of the first divergent frame or
// chain link.
//
// Usage:
//
//	cinemaverify DIR [DIR...]
//
// Exit status is 0 when every store verifies, 1 on any divergence or
// read failure, 2 on usage errors. Stores in the pre-digest index
// formats (1.0/2.0) are checked by length only, with a warning: absence
// of digests is visible, not silently "ok".
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"sort"
	"sync"

	"insituviz/internal/cinemastore"
	"insituviz/internal/provenance"
	"insituviz/internal/workpool"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("cinemaverify: ")

	maxReport := flag.Int("max-report", 10, "per-store cap on individually reported divergent frames")
	flag.Parse()
	if flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "usage: cinemaverify [-max-report N] DIR [DIR...]")
		os.Exit(2)
	}

	failed := false
	for _, dir := range flag.Args() {
		if !verifyStore(dir, *maxReport) {
			failed = true
		}
	}
	if failed {
		os.Exit(1)
	}
}

// frameFault is one divergent or unreadable frame, kept in entry order
// so "first" means first in the canonical index order.
type frameFault struct {
	idx  int
	file string
	err  error
}

func verifyStore(dir string, maxReport int) bool {
	st, err := cinemastore.Open(dir)
	if err != nil {
		fmt.Printf("FAIL %s: %v\n", dir, err)
		return false
	}

	entries := st.Entries()
	digests := 0
	for _, e := range entries {
		if e.Digest != "" {
			digests++
		}
	}

	// Frame pass: parallel full re-read of every frame, verified against
	// the index. Faults are collected per entry so the report names the
	// first divergent frame in canonical order regardless of which worker
	// hit it.
	var (
		mu     sync.Mutex
		faults []frameFault
	)
	workpool.Run(len(entries), len(entries), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			e := entries[i]
			data, rerr := os.ReadFile(filepath.Join(dir, e.File))
			if rerr == nil {
				rerr = e.VerifyFrame(data)
			}
			if rerr != nil {
				mu.Lock()
				faults = append(faults, frameFault{idx: i, file: e.File, err: rerr})
				mu.Unlock()
			}
		}
	})
	sort.Slice(faults, func(i, j int) bool { return faults[i].idx < faults[j].idx })

	ok := true
	if len(faults) > 0 {
		ok = false
		fmt.Printf("FAIL %s: %d of %d frames diverge; first is %s\n",
			dir, len(faults), len(entries), faults[0].file)
		for i, f := range faults {
			if i >= maxReport {
				fmt.Printf("  ... and %d more\n", len(faults)-maxReport)
				break
			}
			fmt.Printf("  frame %d (%s): %v\n", f.idx, f.file, f.err)
		}
	}

	// Manifest pass: replay the hash chain and match its head against
	// the live index. A store without a manifest (pre-ledger formats, or
	// a worker shard that never committed) is reported, not failed — the
	// manifest's absence is only suspicious when digests say the store
	// was written by a ledger-bearing writer.
	manifest := filepath.Join(dir, provenance.ManifestFile)
	recs, merr := provenance.ReadManifest(manifest)
	switch {
	case merr != nil && os.IsNotExist(merr):
		if digests > 0 {
			ok = false
			fmt.Printf("FAIL %s: store has content digests but no %s manifest\n",
				dir, provenance.ManifestFile)
		} else {
			fmt.Printf("note %s: no provenance manifest (format %s)\n", dir, st.Version())
		}
	case merr != nil:
		ok = false
		fmt.Printf("FAIL %s: %v\n", dir, merr)
	case len(recs) == 0:
		ok = false
		fmt.Printf("FAIL %s: manifest %s is empty\n", dir, manifest)
	default:
		head := recs[len(recs)-1]
		root, rootOK := cinemastore.EntriesRoot(entries)
		switch {
		case !rootOK:
			ok = false
			fmt.Printf("FAIL %s: manifest present but index has no digests to root\n", dir)
		case head.Root != root.Hex():
			ok = false
			fmt.Printf("FAIL %s: manifest head root %s != index root %s (record %d)\n",
				dir, short(head.Root), short(root.Hex()), head.Seq)
		case head.Frames != len(entries) || head.Bytes != st.TotalBytes():
			ok = false
			fmt.Printf("FAIL %s: manifest head covers %d frames / %d bytes; index has %d / %d\n",
				dir, head.Frames, head.Bytes, len(entries), st.TotalBytes())
		}
	}

	if ok {
		switch {
		case digests == 0:
			fmt.Printf("ok   %s: %d frames size-checked (format %s: no content digests)\n",
				dir, len(entries), st.Version())
		case len(recs) > 0:
			fmt.Printf("ok   %s: %d frames verified, %d manifest records, root %s\n",
				dir, len(entries), len(recs), short(recs[len(recs)-1].Root))
		default:
			fmt.Printf("ok   %s: %d frames verified\n", dir, len(entries))
		}
	}
	return ok
}

// short abbreviates a hex digest for display.
func short(hex string) string {
	if len(hex) > 12 {
		return hex[:12] + "…"
	}
	return hex
}

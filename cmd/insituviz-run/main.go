// Command insituviz-run executes one visualization pipeline end to end on
// the simulated Caddy platform and prints the measured metrics — the
// paper's basic characterization experiment for a single configuration.
//
// Usage:
//
//	insituviz-run -pipeline insitu -sampling-hours 8
//	insituviz-run -pipeline post -sampling-hours 24 -grid-km 30 -months 3
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"

	"insituviz"
	"insituviz/internal/faults"
	"insituviz/internal/livemodel"
	"insituviz/internal/pipeline"
	"insituviz/internal/report"
	"insituviz/internal/telemetry"
	"insituviz/internal/trace"
	"insituviz/internal/workpool"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("insituviz-run: ")

	pipelineName := flag.String("pipeline", "insitu", "pipeline to run: insitu, post, or intransit")
	stagingNodes := flag.Int("staging-nodes", 0, "staging partition size for -pipeline intransit (0 = default)")
	samplingHours := flag.Float64("sampling-hours", 8, "output sampling interval in simulated hours")
	months := flag.Float64("months", 6, "simulated duration in 30-day months")
	gridKM := flag.Float64("grid-km", 60, "mesh resolution in km")
	timestepMin := flag.Float64("timestep-min", 30, "simulation timestep in simulated minutes")
	tracePath := flag.String("trace", "", "write a Chrome-tracing JSON of the run's phases (with power counter tracks) to this file")
	httpAddr := flag.String("http", "", "serve /metrics and /trace on this address during the run (e.g. :8080; \":0\" picks a port)")
	telemetryOut := flag.String("telemetry", "", "write the run's telemetry snapshot as JSON to this file (\"-\" for stdout, as text)")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile of the run to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile taken after the run to this file")
	chaos := flag.String("chaos", "", fmt.Sprintf("arm deterministic storage fault injection: seed=N[,profile] (profiles: %s)",
		strings.Join(faults.ProfileNames(), ", ")))
	poolWorkers := flag.Int("pool-workers", 0, "cap the shared worker pool's width below GOMAXPROCS (0 = no cap)")
	modelOn := flag.Bool("model", false, "fit the paper's cost model online during the run; adds /model to -http and a convergence table at exit")
	modelWindow := flag.Int("model-window", 256, "observation window for the online model fit (0 = unbounded)")
	energyBudget := flag.Float64("energy-budget", 0, "energy budget in joules; the model flags a budget anomaly when cumulative modeled energy crosses it (implies -model)")
	modelLog := flag.String("model-log", "", "write the byte-stable model anomaly log to this file (\"-\" for stdout; implies -model)")
	modelOut := flag.String("model-out", "", "write the final model snapshot (the /model JSON) to this file (implies -model)")
	flag.Parse()

	if *poolWorkers > 0 && !workpool.SetLimit(*poolWorkers) {
		log.Fatal("-pool-workers: the shared worker pool already started")
	}

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			log.Fatal(err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			log.Fatal(err)
		}
		defer func() {
			pprof.StopCPUProfile()
			if err := f.Close(); err != nil {
				log.Fatal(err)
			}
		}()
	}

	var kind insituviz.Kind
	switch *pipelineName {
	case "insitu", "in-situ":
		kind = insituviz.InSitu
	case "post", "post-processing":
		kind = insituviz.PostProcessing
	case "intransit", "in-transit":
		kind = insituviz.InTransit
	default:
		log.Fatalf("unknown pipeline %q (want insitu, post, or intransit)", *pipelineName)
	}

	w := insituviz.ReferenceWorkload(insituviz.Hours(*samplingHours))
	w.GridKM = *gridKM
	w.SimulatedDuration = insituviz.Hours(*months * 30 * 24)
	w.Timestep = insituviz.Minutes(*timestepMin)

	platform := insituviz.CaddyPlatform()
	platform.StagingNodes = *stagingNodes
	if *chaos != "" {
		plan, err := faults.ParseSpec(*chaos)
		if err != nil {
			log.Fatal(err)
		}
		if platform.Faults, err = faults.New(plan); err != nil {
			log.Fatal(err)
		}
	}
	var est *livemodel.Estimator
	if *modelOn || *energyBudget > 0 || *modelLog != "" || *modelOut != "" {
		est = livemodel.New(livemodel.Config{
			Window:        *modelWindow,
			Damping:       1e-9,
			EnergyBudgetJ: *energyBudget,
		})
		platform.Model = est
	}
	var reg *telemetry.Registry
	if *telemetryOut != "" || *httpAddr != "" {
		reg = telemetry.NewRegistry()
		platform.Telemetry = reg
		est.SetTelemetry(reg)
	}
	var tracer *trace.Tracer
	if *httpAddr != "" {
		tracer = trace.New(trace.Options{})
		platform.Tracer = tracer
		var extras []trace.Endpoint
		if est != nil {
			extras = append(extras, trace.Endpoint{Path: "/model", Desc: "live cost-model fit (JSON)", H: est.Handler()})
		}
		addr, shutdown, err := trace.Serve(*httpAddr, trace.NewHandlerFrom(reg, tracer, extras...))
		if err != nil {
			log.Fatal(err)
		}
		defer shutdown()
		endpoints := "/metrics, /trace"
		if est != nil {
			endpoints += ", /model"
		}
		fmt.Printf("serving live exposition on http://%s/ (%s)\n", addr, endpoints)
	}
	m, err := insituviz.RunPipeline(kind, w, platform)
	if err != nil {
		log.Fatal(err)
	}

	if *memprofile != "" {
		f, err := os.Create(*memprofile)
		if err != nil {
			log.Fatal(err)
		}
		runtime.GC() // settle the heap so the profile reflects live data
		if err := pprof.WriteHeapProfile(f); err != nil {
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
	}

	tb := report.NewTable(fmt.Sprintf("%v pipeline — %g km grid, %g months, output every %g h",
		kind, *gridKM, *months, *samplingHours), "metric", "value")
	tb.AddRow("execution time", m.ExecutionTime.String())
	tb.AddRow("  simulation phase", m.SimTime.String())
	tb.AddRow("  I/O wait", m.IOTime.String())
	tb.AddRow("  visualization phase", m.VizTime.String())
	tb.AddRow("avg compute power", m.AvgComputePower.String())
	tb.AddRow("avg storage power", m.AvgStoragePower.String())
	tb.AddRow("avg total power", m.AvgTotalPower.String())
	tb.AddRow("energy", m.Energy.String())
	tb.AddRow("storage used", m.StorageUsed.String())
	tb.AddRow("outputs written", fmt.Sprintf("%d", m.Outputs))
	fmt.Print(tb.String())

	if est != nil {
		snap := est.Snapshot()
		ref := livemodel.NodeCostModel()
		mt := report.NewTable("live cost model — t = t_sim + α·S_io + β·N_viz",
			"quantity", "fitted", "reference")
		mt.AddRow("observations", fmt.Sprintf("%d (%d in fit window)", snap.Observations, snap.Included), "")
		mt.AddRow("t_sim (s)", fmt.Sprintf("%.4g ± %.2g", snap.TSim, snap.TSimCI), "")
		mt.AddRow("α (s/GB)", fmt.Sprintf("%.4g ± %.2g", snap.Alpha, snap.AlphaCI), fmt.Sprintf("%.4g", ref.AlphaSPerGB))
		mt.AddRow("β (s/image-set)", fmt.Sprintf("%.4g ± %.2g", snap.Beta, snap.BetaCI), fmt.Sprintf("%.4g", ref.BetaSPerSet))
		mt.AddRow("residual p50/p90/p99 (s)",
			fmt.Sprintf("%.3g / %.3g / %.3g", snap.ResidualP50, snap.ResidualP90, snap.ResidualP99), "")
		mt.AddRow("anomalies", fmt.Sprintf("%d io / %d viz / %d budget",
			snap.AnomalyCounts.IO, snap.AnomalyCounts.Viz, snap.AnomalyCounts.Budget), "")
		energy := fmt.Sprintf("%.4g J (burn %.4g W)", snap.EnergyJ, snap.BurnRateW)
		if snap.BudgetJ > 0 {
			energy += fmt.Sprintf(", budget %.4g J", snap.BudgetJ)
		}
		mt.AddRow("modeled energy", energy, "")
		fmt.Print(mt.String())
		verdict := "no"
		switch {
		case !snap.Converged || !snap.Identifiable:
			verdict = "indeterminate" // α not constrained by this run's window
		case livemodel.Contains(snap.Alpha, snap.AlphaCI, ref.AlphaSPerGB):
			verdict = "yes"
		}
		fmt.Printf("model alpha contains-reference %s\n", verdict)

		if *modelLog != "" {
			w := os.Stdout
			if *modelLog != "-" {
				f, err := os.Create(*modelLog)
				if err != nil {
					log.Fatal(err)
				}
				defer f.Close()
				w = f
			}
			if err := snap.WriteLog(w); err != nil {
				log.Fatal(err)
			}
			if *modelLog != "-" {
				fmt.Printf("model anomaly log written to %s\n", *modelLog)
			}
		}
		if *modelOut != "" {
			f, err := os.Create(*modelOut)
			if err != nil {
				log.Fatal(err)
			}
			if err := snap.WriteJSON(f); err != nil {
				log.Fatal(err)
			}
			if err := f.Close(); err != nil {
				log.Fatal(err)
			}
			fmt.Printf("model snapshot written to %s\n", *modelOut)
		}
	}

	if m.Attribution != nil {
		at := report.NewTable(fmt.Sprintf("phase-aligned energy attribution (%s meter)", m.Attribution.Meter),
			"phase", "time", "energy", "avg power")
		for _, p := range m.Attribution.Phases {
			at.AddRow(p.Phase, p.Time.String(), p.Energy.String(), p.AvgPower.String())
		}
		at.AddRow("total", m.Attribution.Window.String(), m.Attribution.Total.String(), "")
		fmt.Print(at.String())
	}

	if *tracePath != "" {
		f, err := os.Create(*tracePath)
		if err != nil {
			log.Fatal(err)
		}
		var counters []trace.CounterTrack
		if m.ComputeProfile != nil {
			counters = append(counters, trace.CounterTrack{Name: "compute power", Profile: m.ComputeProfile})
		}
		if m.StorageProfile != nil {
			counters = append(counters, trace.CounterTrack{Name: "storage power", Profile: m.StorageProfile})
		}
		if series := est.Series(); len(series) > 0 {
			pred := trace.CounterTrack{Name: "model predicted step time", Unit: "s"}
			act := trace.CounterTrack{Name: "model actual step time", Unit: "s"}
			for _, p := range series {
				pred.Points = append(pred.Points, trace.CounterPoint{TS: insituviz.Seconds(p.TS), Value: p.Predicted})
				act.Points = append(act.Points, trace.CounterPoint{TS: insituviz.Seconds(p.TS), Value: p.Actual})
			}
			counters = append(counters, pred, act)
		}
		if err := pipeline.WriteChromeTrace(f, m.Phases, counters...); err != nil {
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("phase timeline written to %s (open in Perfetto or chrome://tracing)\n", *tracePath)
	}

	if reg != nil {
		snap := reg.Snapshot()
		if *telemetryOut == "-" {
			if err := snap.WriteText(os.Stdout); err != nil {
				log.Fatal(err)
			}
		} else {
			f, err := os.Create(*telemetryOut)
			if err != nil {
				log.Fatal(err)
			}
			if err := snap.WriteJSON(f); err != nil {
				log.Fatal(err)
			}
			if err := f.Close(); err != nil {
				log.Fatal(err)
			}
			fmt.Printf("telemetry snapshot written to %s\n", *telemetryOut)
		}
	}
}

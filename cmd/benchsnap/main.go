// Command benchsnap records one point of the repository's performance
// trajectory: it runs the hot-loop benchmarks with -benchmem, writes the
// parsed results to the next BENCH_<n>.json snapshot, and prints a diff
// against the previous snapshot so regressions in ns/op or allocs/op are
// visible at the moment they are introduced.
//
// Usage (from the repository root):
//
//	benchsnap                      # run, snapshot, diff
//	benchsnap -bench LiveCoupled   # restrict the benchmark set
//	benchsnap -fail-over 0.10      # exit 1 on a >10% ns/op or allocs/op regression
package main

import (
	"bytes"
	"flag"
	"fmt"
	"log"
	"os"
	"os/exec"
	"runtime"
	"strings"

	"insituviz/internal/perf"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("benchsnap: ")

	bench := flag.String("bench",
		"BenchmarkLiveCoupledRun|BenchmarkStepParallel10242Cells|BenchmarkStep642Cells|BenchmarkCinemaServeHot|BenchmarkCinemaLoadMixed|BenchmarkLiveModelObserve|BenchmarkTransitLoopback|BenchmarkCommitHashed",
		"benchmark regex passed to go test -bench")
	pkgs := flag.String("pkgs", ".,./internal/ocean,./internal/cinemaserve,./internal/livemodel,./internal/intransit,./internal/cinemastore", "comma-separated packages holding the benchmarks")
	dir := flag.String("dir", ".", "directory holding the BENCH_<n>.json trajectory")
	benchtime := flag.String("benchtime", "", "optional -benchtime passed to go test (e.g. 10x, 2s)")
	failOver := flag.Float64("fail-over", 0,
		"exit 1 when ns/op or allocs/op regresses by more than this fraction vs the previous snapshot (0 = report only)")
	scalingFail := flag.Bool("scaling-fail", false,
		"exit 1 (instead of only warning) when the solver scaling matrix shows workers4 not beating serial or workers8 slower than workers4")
	flag.Parse()

	prev, err := perf.LatestSnapshot(*dir)
	if err != nil {
		log.Fatal(err)
	}

	var all []perf.Result
	for _, pkg := range strings.Split(*pkgs, ",") {
		pkg = strings.TrimSpace(pkg)
		if pkg == "" {
			continue
		}
		args := []string{"test", "-run", "^$", "-bench", *bench, "-benchmem", "-count", "1"}
		if *benchtime != "" {
			args = append(args, "-benchtime", *benchtime)
		}
		args = append(args, pkg)
		fmt.Fprintf(os.Stderr, "benchsnap: go %s\n", strings.Join(args, " "))
		cmd := exec.Command("go", args...)
		var out bytes.Buffer
		cmd.Stdout = &out
		cmd.Stderr = os.Stderr
		if err := cmd.Run(); err != nil {
			log.Fatalf("go test %s: %v", pkg, err)
		}
		results, err := perf.ParseBenchOutput(&out)
		if err != nil {
			log.Fatal(err)
		}
		all = append(all, results...)
	}
	if len(all) == 0 {
		log.Fatalf("no benchmarks matched %q in %s", *bench, *pkgs)
	}

	snap := perf.NewSnapshot(all)
	path, err := perf.WriteNext(*dir, snap)
	if err != nil {
		log.Fatal(err)
	}

	rows := perf.Diff(prev, snap)
	title := fmt.Sprintf("snapshot %s (first trajectory point)", path)
	if prev != nil {
		title = fmt.Sprintf("snapshot %s vs BENCH_%d.json", path, prev.Sequence)
	}
	fmt.Print(perf.FormatDiff(rows, title))

	if *failOver > 0 {
		if reg := perf.Regressions(rows, *failOver); len(reg) != 0 {
			for _, r := range reg {
				log.Printf("REGRESSION %s: %.0f -> %.0f ns/op, %d -> %d allocs/op",
					r.Name, r.OldNs, r.NewNs, r.OldAllocs, r.NewAllocs)
			}
			os.Exit(1)
		}
	}
	if !checkScaling(snap) && *scalingFail {
		os.Exit(1)
	}
}

// checkScaling inspects the solver's worker scaling matrix
// (BenchmarkStepParallel10242Cells/{serial,workers2,workers4,workers8}):
// on a host with at least 4 cores, workers4 should beat serial by 1.3x and
// workers8 should be no slower than workers4. Violations are advisory by
// default — a single-core CI runner cannot scale and correctly shows
// workers4 == serial — so they only warn unless -scaling-fail is set.
// Returns false when a check (applicable on this host) failed.
func checkScaling(snap *perf.Snapshot) bool {
	const prefix = "BenchmarkStepParallel10242Cells/"
	ns := map[string]float64{}
	for _, r := range snap.Results {
		if strings.HasPrefix(r.Name, prefix) {
			ns[strings.TrimPrefix(r.Name, prefix)] = r.NsPerOp
		}
	}
	serial, w4, w8 := ns["serial"], ns["workers4"], ns["workers8"]
	if serial == 0 || w4 == 0 {
		return true // matrix not in this run's benchmark set
	}
	if runtime.GOMAXPROCS(0) < 4 {
		// Below 4 cores every matrix entry resolves to (nearly) the same
		// execution, so the differences are scheduler noise, not scaling.
		log.Printf("scaling checks skipped: GOMAXPROCS=%d < 4", runtime.GOMAXPROCS(0))
		return true
	}
	ok := true
	if w4 > serial/1.3 {
		log.Printf("SCALING: workers4 = %.0f ns/op, want <= serial/1.3 = %.0f ns/op (serial %.0f)",
			w4, serial/1.3, serial)
		ok = false
	}
	// No oversubscription penalty: configuring more workers than help must
	// not make the pooled run meaningfully slower.
	if w8 != 0 && w8 > w4*1.10 {
		log.Printf("SCALING: workers8 = %.0f ns/op is >10%% slower than workers4 = %.0f ns/op", w8, w4)
		ok = false
	}
	return ok
}

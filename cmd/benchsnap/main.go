// Command benchsnap records one point of the repository's performance
// trajectory: it runs the hot-loop benchmarks with -benchmem, writes the
// parsed results to the next BENCH_<n>.json snapshot, and prints a diff
// against the previous snapshot so regressions in ns/op or allocs/op are
// visible at the moment they are introduced.
//
// Usage (from the repository root):
//
//	benchsnap                      # run, snapshot, diff
//	benchsnap -bench LiveCoupled   # restrict the benchmark set
//	benchsnap -fail-over 0.10      # exit 1 on a >10% ns/op or allocs/op regression
package main

import (
	"bytes"
	"flag"
	"fmt"
	"log"
	"os"
	"os/exec"
	"strings"

	"insituviz/internal/perf"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("benchsnap: ")

	bench := flag.String("bench",
		"BenchmarkLiveCoupledRun|BenchmarkStepParallel10242Cells|BenchmarkStep642Cells|BenchmarkCinemaServeHot|BenchmarkCinemaLoadMixed",
		"benchmark regex passed to go test -bench")
	pkgs := flag.String("pkgs", ".,./internal/ocean,./internal/cinemaserve", "comma-separated packages holding the benchmarks")
	dir := flag.String("dir", ".", "directory holding the BENCH_<n>.json trajectory")
	benchtime := flag.String("benchtime", "", "optional -benchtime passed to go test (e.g. 10x, 2s)")
	failOver := flag.Float64("fail-over", 0,
		"exit 1 when ns/op or allocs/op regresses by more than this fraction vs the previous snapshot (0 = report only)")
	flag.Parse()

	prev, err := perf.LatestSnapshot(*dir)
	if err != nil {
		log.Fatal(err)
	}

	var all []perf.Result
	for _, pkg := range strings.Split(*pkgs, ",") {
		pkg = strings.TrimSpace(pkg)
		if pkg == "" {
			continue
		}
		args := []string{"test", "-run", "^$", "-bench", *bench, "-benchmem", "-count", "1"}
		if *benchtime != "" {
			args = append(args, "-benchtime", *benchtime)
		}
		args = append(args, pkg)
		fmt.Fprintf(os.Stderr, "benchsnap: go %s\n", strings.Join(args, " "))
		cmd := exec.Command("go", args...)
		var out bytes.Buffer
		cmd.Stdout = &out
		cmd.Stderr = os.Stderr
		if err := cmd.Run(); err != nil {
			log.Fatalf("go test %s: %v", pkg, err)
		}
		results, err := perf.ParseBenchOutput(&out)
		if err != nil {
			log.Fatal(err)
		}
		all = append(all, results...)
	}
	if len(all) == 0 {
		log.Fatalf("no benchmarks matched %q in %s", *bench, *pkgs)
	}

	snap := perf.NewSnapshot(all)
	path, err := perf.WriteNext(*dir, snap)
	if err != nil {
		log.Fatal(err)
	}

	rows := perf.Diff(prev, snap)
	title := fmt.Sprintf("snapshot %s (first trajectory point)", path)
	if prev != nil {
		title = fmt.Sprintf("snapshot %s vs BENCH_%d.json", path, prev.Sequence)
	}
	fmt.Print(perf.FormatDiff(rows, title))

	if *failOver > 0 {
		if reg := perf.Regressions(rows, *failOver); len(reg) != 0 {
			for _, r := range reg {
				log.Printf("REGRESSION %s: %.0f -> %.0f ns/op, %d -> %d allocs/op",
					r.Name, r.OldNs, r.NewNs, r.OldAllocs, r.NewAllocs)
			}
			os.Exit(1)
		}
	}
}

// Command ncinfo prints the header of a netCDF classic file in CDL
// notation (like `ncdump -h`), and optionally per-variable statistics —
// for inspecting the raw dumps the post-processing pipeline writes.
//
// Usage:
//
//	ncinfo [-stats] file.nc ...
package main

import (
	"flag"
	"fmt"
	"log"
	"path/filepath"
	"strings"

	"insituviz/internal/ncfile"
	"insituviz/internal/report"
	"insituviz/internal/stats"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("ncinfo: ")
	showStats := flag.Bool("stats", false, "also print per-variable statistics")
	flag.Parse()
	if flag.NArg() == 0 {
		log.Fatal("usage: ncinfo [-stats] file.nc ...")
	}
	for _, path := range flag.Args() {
		f, err := ncfile.ReadFile(path)
		if err != nil {
			log.Fatal(err)
		}
		name := strings.TrimSuffix(filepath.Base(path), filepath.Ext(path))
		fmt.Print(ncfile.DumpCDL(f, name))
		if !*showStats {
			continue
		}
		tb := report.NewTable("variable statistics", "variable", "values", "min", "mean", "max")
		for id := range f.Vars {
			data, err := f.Data(id)
			if err != nil {
				log.Fatal(err)
			}
			s, err := stats.Summarize(data)
			if err != nil {
				continue // empty variable
			}
			tb.AddRow(f.Vars[id].Name, fmt.Sprintf("%d", s.N),
				fmt.Sprintf("%.4g", s.Min), fmt.Sprintf("%.4g", s.Mean), fmt.Sprintf("%.4g", s.Max))
		}
		fmt.Print(tb.String())
		fmt.Println()
	}
}

// Command tracecheck validates the trace artifacts a run exports — the CI
// smoke gate for the observability stack. It checks that a Chrome
// trace-event JSON file parses and carries the required fields (name, ph,
// ts, pid, tid) on every event, and that an attribution report's per-phase
// energies sum to its total within 1e-9 relative — the conservation
// contract of the attribution engine.
//
// Usage:
//
//	tracecheck -trace out.json -attrib attrib.json
//	tracecheck -trace out.json -want-counters
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"math"
	"os"

	"insituviz/internal/trace"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("tracecheck: ")

	tracePath := flag.String("trace", "", "Chrome trace-event JSON file to validate")
	attribPath := flag.String("attrib", "", "attribution JSON file to validate (phase energies must sum to the total)")
	wantCounters := flag.Bool("want-counters", false, "require at least one power counter event in the trace")
	flag.Parse()

	if *tracePath == "" && *attribPath == "" {
		log.Fatal("nothing to check: pass -trace and/or -attrib")
	}

	if *tracePath != "" {
		data, err := os.ReadFile(*tracePath)
		if err != nil {
			log.Fatal(err)
		}
		events, counters, err := trace.ValidateChrome(data)
		if err != nil {
			log.Fatalf("%s: %v", *tracePath, err)
		}
		if *wantCounters && counters == 0 {
			log.Fatalf("%s: no power counter events", *tracePath)
		}
		fmt.Printf("%s: ok (%d events, %d counter samples)\n", *tracePath, events, counters)
	}

	if *attribPath != "" {
		data, err := os.ReadFile(*attribPath)
		if err != nil {
			log.Fatal(err)
		}
		var att trace.Attribution
		if err := json.Unmarshal(data, &att); err != nil {
			log.Fatalf("%s: %v", *attribPath, err)
		}
		if len(att.Phases) == 0 {
			log.Fatalf("%s: no phases", *attribPath)
		}
		var sum float64
		for _, p := range att.Phases {
			sum += float64(p.Energy)
		}
		total := float64(att.Total)
		if err := relClose(sum, total, 1e-9); err != nil {
			log.Fatalf("%s: phase energies do not sum to the total: %v", *attribPath, err)
		}
		fmt.Printf("%s: ok (%d phases, %.6g J total, conservation within 1e-9)\n",
			*attribPath, len(att.Phases), total)
	}
}

// relClose errors unless a and b agree within tol relative (absolute when
// both are near zero).
func relClose(a, b, tol float64) error {
	scale := math.Max(math.Abs(a), math.Abs(b))
	if scale < 1 {
		scale = 1
	}
	if diff := math.Abs(a - b); diff > tol*scale {
		return fmt.Errorf("%g vs %g (diff %g, tolerance %g)", a, b, diff, tol*scale)
	}
	return nil
}

// Command liverun drives the real coupled stack from the command line: the
// shallow-water solver integrating the unstable-jet scenario, in-situ or
// post-processing visualization of the Okubo-Weiss field, Cinema image
// output, and eddy detection and tracking.
//
// Usage:
//
//	liverun -mode insitu -steps 360 -out /tmp/run
//	liverun -mode post -subdivisions 4 -ortho-views 6 -out /tmp/run
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"insituviz"
	"insituviz/internal/cinemaserve"
	"insituviz/internal/cinemastore"
	"insituviz/internal/faults"
	"insituviz/internal/livemodel"
	"insituviz/internal/report"
	"insituviz/internal/telemetry"
	"insituviz/internal/trace"
	"insituviz/internal/units"
	"insituviz/internal/workpool"
)

// splitAddrs parses a comma-separated address list, dropping empties.
func splitAddrs(s string) []string {
	var out []string
	for _, a := range strings.Split(s, ",") {
		if a = strings.TrimSpace(a); a != "" {
			out = append(out, a)
		}
	}
	return out
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("liverun: ")

	mode := flag.String("mode", "insitu", "pipeline: insitu or post")
	steps := flag.Int("steps", 240, "solver timesteps")
	sample := flag.Int("sample-every", 24, "visualize every N steps")
	subdiv := flag.Int("subdivisions", 3, "mesh refinement (10*4^n+2 cells)")
	width := flag.Int("width", 384, "image width")
	height := flag.Int("height", 192, "image height")
	ranks := flag.Int("render-ranks", 8, "parallel render ranks (RCB partition)")
	orthoViews := flag.Int("ortho-views", 0, "extra orthographic globe views per sample (0-6)")
	eddyCores := flag.Bool("eddy-cores", false, "additionally render the thresholded eddy-core frame per sample")
	transport := flag.String("transport", "inproc", "visualization transport: inproc renders in-process, tcp streams shards to -viz-workers")
	vizWorkers := flag.String("viz-workers", "", "comma-separated vizworker addresses for -transport tcp")
	transitCodec := flag.String("transit-codec", "", "on-wire codec for -transport tcp: flate (default) or raw")
	workers := flag.Int("workers", 0, "solver worker count (0 = GOMAXPROCS, negative = serial)")
	renderWorkers := flag.Int("render-workers", 0, "render fan-out budget in concurrent tiles per rasterizer (0 = GOMAXPROCS)")
	poolWorkers := flag.Int("pool-workers", 0, "cap the shared worker pool's width below GOMAXPROCS (0 = no cap)")
	out := flag.String("out", "", "output directory (default: temp dir)")
	telemetryOut := flag.String("telemetry", "", "write the run's telemetry snapshot as JSON to this file (\"-\" for stdout, as text)")
	traceOut := flag.String("trace", "", "write the run's timeline as Chrome trace-event JSON to this file (open in Perfetto)")
	attribOut := flag.String("attrib", "", "write the per-phase energy attribution to this file (JSON, or CSV with a .csv suffix)")
	httpAddr := flag.String("http", "", "serve /metrics, /trace, and /cinema/ on this address during the run (e.g. :8080; \":0\" picks a port)")
	serveFor := flag.Duration("serve", 0, "after the run, keep serving the produced Cinema database under /cinema/ for this long (requires -http)")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile of the run to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile taken after the run to this file")
	chaos := flag.String("chaos", "", fmt.Sprintf("arm deterministic fault injection: seed=N[,profile] (profiles: %s)",
		strings.Join(faults.ProfileNames(), ", ")))
	vizDeadline := flag.Float64("viz-deadline", 0, "per-sample visualization budget in seconds; injected stalls at or beyond it drop the sample's frames (0 = 0.5 s when -chaos is set)")
	faultlog := flag.String("faultlog", "", "write the byte-stable injected-fault log to this file (\"-\" for stdout; requires -chaos)")
	modelOn := flag.Bool("model", false, "fit the paper's cost model online during the run; adds /model to -http and a convergence table at exit")
	modelWindow := flag.Int("model-window", 256, "observation window for the online model fit (0 = unbounded)")
	energyBudget := flag.Float64("energy-budget", 0, "energy budget in joules; the model flags a budget anomaly when cumulative modeled energy crosses it (implies -model)")
	modelLog := flag.String("model-log", "", "write the byte-stable model anomaly log to this file (\"-\" for stdout; implies -model)")
	modelOut := flag.String("model-out", "", "write the final model snapshot (the /model JSON) to this file (implies -model)")
	flag.Parse()

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			log.Fatal(err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			log.Fatal(err)
		}
		defer func() {
			pprof.StopCPUProfile()
			if err := f.Close(); err != nil {
				log.Fatal(err)
			}
		}()
	}

	if *poolWorkers > 0 && !workpool.SetLimit(*poolWorkers) {
		log.Fatal("-pool-workers: the shared worker pool already started")
	}

	var kind insituviz.Kind
	switch *mode {
	case "insitu", "in-situ":
		kind = insituviz.InSitu
	case "post", "post-processing":
		kind = insituviz.PostProcessing
	default:
		log.Fatalf("unknown mode %q", *mode)
	}
	dir := *out
	if dir == "" {
		var err error
		if dir, err = os.MkdirTemp("", "insituviz-live-"); err != nil {
			log.Fatal(err)
		}
	}

	var injector *faults.Injector
	if *chaos != "" {
		plan, err := faults.ParseSpec(*chaos)
		if err != nil {
			log.Fatal(err)
		}
		if injector, err = faults.New(plan); err != nil {
			log.Fatal(err)
		}
	}
	if *faultlog != "" && injector == nil {
		log.Fatal("-faultlog requires -chaos")
	}

	var est *livemodel.Estimator
	if *modelOn || *energyBudget > 0 || *modelLog != "" || *modelOut != "" {
		est = livemodel.New(livemodel.Config{
			Window:        *modelWindow,
			Damping:       1e-9,
			EnergyBudgetJ: *energyBudget,
		})
	}

	// The tracer and (shared) registry exist whenever any observability
	// flag asks for them; -http additionally exposes both live while the
	// run executes.
	var tracer *trace.Tracer
	if *traceOut != "" || *attribOut != "" || *httpAddr != "" {
		tracer = trace.New(trace.Options{})
	}
	if *serveFor > 0 && *httpAddr == "" {
		log.Fatal("-serve requires -http")
	}
	var reg *telemetry.Registry
	var cinemaSrv *cinemaserve.Server
	if *httpAddr != "" {
		reg = telemetry.NewRegistry()
		// The Cinema query server shares the exposition: its registry is
		// namespaced under "serve." next to the run's own metrics, and its
		// request spans land on the same tracer. The run's database is
		// mounted once LiveRun returns; until then /cinema/ lists nothing.
		serveReg := telemetry.NewRegistry()
		cinemaSrv = cinemaserve.NewServer(cinemaserve.Config{Telemetry: serveReg, Tracer: tracer})
		union := telemetry.NewUnion().Add("", reg).Add("serve.", serveReg)
		mux := http.NewServeMux()
		var extras []trace.Endpoint
		if est != nil {
			extras = append(extras, trace.Endpoint{Path: "/model", Desc: "live cost-model fit (JSON)", H: est.Handler()})
		}
		mux.Handle("/", trace.NewHandlerFrom(union, tracer, extras...))
		mux.Handle("/cinema/", http.StripPrefix("/cinema", cinemaSrv.Handler()))
		addr, shutdown, err := trace.Serve(*httpAddr, mux)
		if err != nil {
			log.Fatal(err)
		}
		defer shutdown()
		endpoints := "/metrics, /trace, /cinema/"
		if est != nil {
			endpoints += ", /model"
		}
		fmt.Printf("serving live exposition on http://%s/ (%s)\n", addr, endpoints)
	}

	res, err := insituviz.LiveRun(insituviz.LiveConfig{
		Mode:             kind,
		MeshSubdivisions: *subdiv,
		Steps:            *steps,
		SampleEverySteps: *sample,
		OutputDir:        dir,
		ImageWidth:       *width,
		ImageHeight:      *height,
		RenderRanks:      *ranks,
		OrthoViews:       *orthoViews,
		EddyCoreImages:   *eddyCores,
		Workers:          *workers,
		RenderWorkers:    *renderWorkers,
		Transport:        *transport,
		VizWorkers:       splitAddrs(*vizWorkers),
		TransitCodec:     *transitCodec,
		Telemetry:        reg,
		Tracer:           tracer,
		Faults:           injector,
		VizDeadline:      units.Seconds(*vizDeadline),
		Model:            est,
	})
	if err != nil {
		log.Fatal(err)
	}

	if cinemaSrv != nil {
		st, err := cinemastore.Open(filepath.Join(dir, "cinema"))
		if err != nil {
			log.Fatal(err)
		}
		if err := cinemaSrv.Mount("run", st); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("cinema database mounted at /cinema/run/ (%d frames)\n", st.Len())
	}

	if *memprofile != "" {
		f, err := os.Create(*memprofile)
		if err != nil {
			log.Fatal(err)
		}
		runtime.GC() // settle the heap so the profile reflects live data
		if err := pprof.WriteHeapProfile(f); err != nil {
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
	}

	tb := report.NewTable(fmt.Sprintf("live %v run — %d steps, sampled every %d", kind, res.Steps, *sample),
		"metric", "value")
	tb.AddRow("samples visualized", fmt.Sprintf("%d", res.Samples))
	tb.AddRow("images written", fmt.Sprintf("%d (%v)", res.Images, res.ImageBytes))
	if res.RawBytes > 0 {
		tb.AddRow("raw netCDF dumps", res.RawBytes.String())
	}
	tb.AddRow("eddies per sample", fmt.Sprintf("%v", res.EddiesPerSample))
	if res.CyclonicEddies+res.AnticyclonicEddies > 0 {
		tb.AddRow("eddy spin census", fmt.Sprintf("%d cyclonic / %d anticyclonic", res.CyclonicEddies, res.AnticyclonicEddies))
	}
	tb.AddRow("eddy tracks", fmt.Sprintf("%d (longest life %v)", res.Tracks, res.LongestTrackLifetime))
	tb.AddRow("longest eddy drift", fmt.Sprintf("%.0f km", res.LongestTrackDistance/1000))
	tb.AddRow("peak flow speed", fmt.Sprintf("%.1f m/s", res.MaxVelocity))
	tb.AddRow("halo exchange per field", res.HaloBytesPerField.String())
	if injector != nil {
		tb.AddRow("chaos", fmt.Sprintf("%d faults injected (seed %d)", injector.Fired(), injector.Seed()))
		tb.AddRow("degradation", fmt.Sprintf("%d samples / %d frames dropped, %d rank crashes, %d failovers",
			res.DroppedSamples, res.DroppedFrames, res.RankCrashes, res.Failovers))
	}
	tb.AddRow("output directory", res.OutputDir)
	fmt.Print(tb.String())

	if *faultlog != "" {
		w := os.Stdout
		if *faultlog != "-" {
			f, err := os.Create(*faultlog)
			if err != nil {
				log.Fatal(err)
			}
			defer f.Close()
			w = f
		}
		if err := injector.WriteLog(w); err != nil {
			log.Fatal(err)
		}
		if *faultlog != "-" {
			fmt.Printf("fault log written to %s\n", *faultlog)
		}
	}

	if res.Model != nil {
		snap := res.Model
		ref := livemodel.NodeCostModel()
		mt := report.NewTable("live cost model — t = t_sim + α·S_io + β·N_viz",
			"quantity", "fitted", "reference")
		mt.AddRow("observations", fmt.Sprintf("%d (%d in fit window)", snap.Observations, snap.Included), "")
		mt.AddRow("t_sim (s)", fmt.Sprintf("%.4g ± %.2g", snap.TSim, snap.TSimCI), "")
		mt.AddRow("α (s/GB)", fmt.Sprintf("%.4g ± %.2g", snap.Alpha, snap.AlphaCI), fmt.Sprintf("%.4g", ref.AlphaSPerGB))
		mt.AddRow("β (s/image-set)", fmt.Sprintf("%.4g ± %.2g", snap.Beta, snap.BetaCI), fmt.Sprintf("%.4g", ref.BetaSPerSet))
		mt.AddRow("residual p50/p90/p99 (s)",
			fmt.Sprintf("%.3g / %.3g / %.3g", snap.ResidualP50, snap.ResidualP90, snap.ResidualP99), "")
		mt.AddRow("anomalies", fmt.Sprintf("%d io / %d viz / %d budget",
			snap.AnomalyCounts.IO, snap.AnomalyCounts.Viz, snap.AnomalyCounts.Budget), "")
		energy := fmt.Sprintf("%.4g J (burn %.4g W)", snap.EnergyJ, snap.BurnRateW)
		if snap.BudgetJ > 0 {
			energy += fmt.Sprintf(", budget %.4g J", snap.BudgetJ)
		}
		mt.AddRow("modeled energy", energy, "")
		fmt.Print(mt.String())
		verdict := "no"
		switch {
		case !snap.Converged || !snap.Identifiable:
			verdict = "indeterminate" // α not constrained by this run's window
		case livemodel.Contains(snap.Alpha, snap.AlphaCI, ref.AlphaSPerGB):
			verdict = "yes"
		}
		fmt.Printf("model alpha contains-reference %s\n", verdict)
	}

	if *modelLog != "" {
		w := os.Stdout
		if *modelLog != "-" {
			f, err := os.Create(*modelLog)
			if err != nil {
				log.Fatal(err)
			}
			defer f.Close()
			w = f
		}
		if err := res.Model.WriteLog(w); err != nil {
			log.Fatal(err)
		}
		if *modelLog != "-" {
			fmt.Printf("model anomaly log written to %s\n", *modelLog)
		}
	}

	if *modelOut != "" {
		f, err := os.Create(*modelOut)
		if err != nil {
			log.Fatal(err)
		}
		if err := res.Model.WriteJSON(f); err != nil {
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("model snapshot written to %s\n", *modelOut)
	}

	if res.PhaseEnergy != nil {
		at := report.NewTable(fmt.Sprintf("phase-aligned energy attribution (%s meter)", res.PhaseEnergy.Meter),
			"phase", "time", "energy", "avg power")
		for _, p := range res.PhaseEnergy.Phases {
			at.AddRow(p.Phase, p.Time.String(), p.Energy.String(), p.AvgPower.String())
		}
		at.AddRow("total", res.PhaseEnergy.Window.String(), res.PhaseEnergy.Total.String(), "")
		fmt.Print(at.String())
	}

	if *traceOut != "" {
		f, err := os.Create(*traceOut)
		if err != nil {
			log.Fatal(err)
		}
		var counters []trace.CounterTrack
		if res.PowerProfile != nil {
			counters = append(counters, trace.CounterTrack{Name: "node-model power", Profile: res.PowerProfile})
		}
		if series := est.Series(); len(series) > 0 {
			pred := trace.CounterTrack{Name: "model predicted step time", Unit: "s"}
			act := trace.CounterTrack{Name: "model actual step time", Unit: "s"}
			for _, p := range series {
				pred.Points = append(pred.Points, trace.CounterPoint{TS: units.Seconds(p.TS), Value: p.Predicted})
				act.Points = append(act.Points, trace.CounterPoint{TS: units.Seconds(p.TS), Value: p.Actual})
			}
			counters = append(counters, pred, act)
		}
		if err := trace.WriteChrome(f, res.Timeline, counters...); err != nil {
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("timeline written to %s (open in Perfetto or chrome://tracing)\n", *traceOut)
	}

	if *attribOut != "" {
		if res.PhaseEnergy == nil {
			log.Fatal("-attrib: run produced no attribution (no driver spans recorded)")
		}
		f, err := os.Create(*attribOut)
		if err != nil {
			log.Fatal(err)
		}
		if strings.HasSuffix(*attribOut, ".csv") {
			err = res.PhaseEnergy.WriteCSV(f)
		} else {
			err = res.PhaseEnergy.WriteJSON(f)
		}
		if err != nil {
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("attribution written to %s\n", *attribOut)
	}

	switch *telemetryOut {
	case "":
	case "-":
		if err := res.Telemetry.WriteText(os.Stdout); err != nil {
			log.Fatal(err)
		}
	default:
		f, err := os.Create(*telemetryOut)
		if err != nil {
			log.Fatal(err)
		}
		if err := res.Telemetry.WriteJSON(f); err != nil {
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("telemetry snapshot written to %s\n", *telemetryOut)
	}

	if *serveFor > 0 {
		fmt.Printf("serving cinema database for %v\n", *serveFor)
		time.Sleep(*serveFor)
	}
}

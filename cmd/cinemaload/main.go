// Command cinemaload drives a closed-loop, Zipf-distributed load against
// a running cinemaserve (or liverun -http) instance and reports the
// throughput and latency quantiles the serving contracts promise. It is
// the measurement half of the serving subsystem: the cache hit ratio and
// shed behavior under a realistic skewed workload are what the byte
// budget and admission bounds were designed for.
//
// Closed loop means each worker issues its next request only after the
// previous one completes, so concurrency is exactly -workers and the
// server's admission control — not the generator — decides what gets
// shed.
//
// Usage:
//
//	cinemaload -addr http://127.0.0.1:8080 -store run -requests 2000 -workers 8
//
// Exit status is 1 if any request fails with a status other than 200 or
// 503 (sheds are the server keeping its overload promise, not a failure),
// or if no request succeeds at all.
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"math/rand"
	"net/http"
	"net/url"
	"os"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"insituviz/internal/cinemastore"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("cinemaload: ")

	addr := flag.String("addr", "http://127.0.0.1:8080", "base URL of the cinema server")
	store := flag.String("store", "run", "mounted store name to load")
	workers := flag.Int("workers", 8, "closed-loop concurrency")
	requests := flag.Int("requests", 2000, "total requests to issue")
	zipfS := flag.Float64("zipf-s", 1.2, "Zipf skew exponent (>1; larger = hotter head)")
	zipfV := flag.Float64("zipf-v", 1, "Zipf value offset (>=1)")
	seed := flag.Int64("seed", 1, "RNG seed (per-worker streams derive from it)")
	nearest := flag.Bool("nearest", false, "query with nearest=1 and axis jitter instead of exact lookups")
	flag.Parse()

	if *workers < 1 || *requests < 1 {
		log.Fatalf("need positive -workers and -requests (got %d, %d)", *workers, *requests)
	}

	// The index is the work list: every request targets a real entry, so a
	// non-200 response is the server's doing, not a bad key.
	entries := fetchIndex(*addr, *store)
	if len(entries) == 0 {
		log.Fatalf("store %s has no frames", *store)
	}
	fmt.Printf("loaded index: %d frames in store %q\n", len(entries), *store)

	var issued, ok200, shed503, failed atomic.Int64
	latencies := make([][]time.Duration, *workers)
	var firstFailure atomic.Value

	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < *workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(*seed + int64(w)))
			zipf := rand.NewZipf(rng, *zipfS, *zipfV, uint64(len(entries)-1))
			client := &http.Client{Timeout: 30 * time.Second}
			lats := make([]time.Duration, 0, *requests / *workers + 1)
			for issued.Add(1) <= int64(*requests) {
				e := entries[zipf.Uint64()]
				u := frameURL(*addr, *store, e, *nearest, rng)
				t0 := time.Now()
				resp, err := client.Get(u)
				if err != nil {
					failed.Add(1)
					firstFailure.CompareAndSwap(nil, fmt.Sprintf("GET %s: %v", u, err))
					continue
				}
				_, _ = io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				switch resp.StatusCode {
				case http.StatusOK:
					ok200.Add(1)
					lats = append(lats, time.Since(t0))
				case http.StatusServiceUnavailable:
					shed503.Add(1)
				default:
					failed.Add(1)
					firstFailure.CompareAndSwap(nil, fmt.Sprintf("GET %s: status %d", u, resp.StatusCode))
				}
			}
			latencies[w] = lats
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)

	var all []time.Duration
	for _, lats := range latencies {
		all = append(all, lats...)
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })

	total := ok200.Load() + shed503.Load() + failed.Load()
	fmt.Printf("requests:   %d total, %d ok, %d shed (503), %d failed in %v\n",
		total, ok200.Load(), shed503.Load(), failed.Load(), elapsed.Round(time.Millisecond))
	fmt.Printf("throughput: %.0f ok/s\n", float64(ok200.Load())/elapsed.Seconds())
	if len(all) > 0 {
		fmt.Printf("latency:    p50 %v  p90 %v  p99 %v  max %v\n",
			quantile(all, 0.50), quantile(all, 0.90), quantile(all, 0.99), all[len(all)-1])
	}

	if msg := firstFailure.Load(); msg != nil {
		log.Printf("first failure: %s", msg)
	}
	if failed.Load() > 0 || ok200.Load() == 0 {
		os.Exit(1)
	}
}

// fetchIndex pulls and parses the store's index document.
func fetchIndex(addr, store string) []cinemastore.Entry {
	resp, err := http.Get(addr + "/cinema/" + url.PathEscape(store) + "/index.json")
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		log.Fatalf("index fetch: status %d", resp.StatusCode)
	}
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		log.Fatal(err)
	}
	entries, _, err := cinemastore.DecodeIndex(data)
	if err != nil {
		log.Fatal(err)
	}
	return entries
}

// frameURL builds the query for one entry. Exact mode reproduces the
// entry's axis point bit-for-bit ('g'/-1 round-trips float64 through the
// query string); nearest mode jitters the axes and lets the server snap.
func frameURL(addr, store string, e cinemastore.Entry, nearest bool, rng *rand.Rand) string {
	t, phi, theta := e.Time, e.Phi, e.Theta
	q := url.Values{}
	q.Set("var", e.Variable)
	if nearest {
		t += (rng.Float64() - 0.5) * 10
		phi += (rng.Float64() - 0.5) * 0.1
		theta += (rng.Float64() - 0.5) * 0.1
		q.Set("nearest", "1")
	}
	q.Set("time", strconv.FormatFloat(t, 'g', -1, 64))
	if phi != 0 {
		q.Set("phi", strconv.FormatFloat(phi, 'g', -1, 64))
	}
	if theta != 0 {
		q.Set("theta", strconv.FormatFloat(theta, 'g', -1, 64))
	}
	return addr + "/cinema/" + url.PathEscape(store) + "/frame?" + q.Encode()
}

// quantile returns the q'th latency of a sorted sample.
func quantile(sorted []time.Duration, q float64) time.Duration {
	i := int(q * float64(len(sorted)))
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return sorted[i]
}

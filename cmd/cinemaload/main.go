// Command cinemaload drives a closed-loop, Zipf-distributed load against
// a running cinemaserve (or liverun -http) instance and reports the
// throughput and latency quantiles the serving contracts promise. It is
// the measurement half of the serving subsystem: the cache hit ratio and
// shed behavior under a realistic skewed workload are what the byte
// budget and admission bounds were designed for.
//
// Closed loop means each worker issues its next request only after the
// previous one completes, so concurrency is exactly -workers and the
// server's admission control — not the generator — decides what gets
// shed.
//
// With -targets the load spreads round-robin across several endpoints —
// a node fleet driven directly, or several gateways — with client-side
// failover: a transport error or 5xx (other than 503) retries the same
// request on the next target before counting a failure. The run then
// reports a per-target balance table and the max/min ok ratio;
// -balance-fail turns an imbalance beyond that ratio into a nonzero
// exit, which is how CI asserts a cluster rebalanced after losing a
// node.
//
// Usage:
//
//	cinemaload -addr http://127.0.0.1:8080 -store run -requests 2000 -workers 8
//	cinemaload -targets http://127.0.0.1:9001,http://127.0.0.1:9002 \
//	    -store run -requests 2000 -balance-fail 3
//
// Exit status is 1 if any request fails with a status other than 200 or
// 503 (sheds are the server keeping its overload promise, not a failure),
// if no request succeeds at all, or if -balance-fail trips.
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"math"
	"math/rand"
	"net/http"
	"net/url"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"insituviz/internal/cinemastore"
)

// targetStats is one endpoint's share of the run.
type targetStats struct {
	req, ok, shed, errs atomic.Int64
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("cinemaload: ")

	addr := flag.String("addr", "http://127.0.0.1:8080", "base URL of the cinema server")
	targetsFlag := flag.String("targets", "", "comma-separated base URLs to drive round-robin with client-side failover (overrides -addr)")
	store := flag.String("store", "run", "mounted store name to load")
	workers := flag.Int("workers", 8, "closed-loop concurrency")
	requests := flag.Int("requests", 2000, "total requests to issue")
	zipfS := flag.Float64("zipf-s", 1.2, "Zipf skew exponent (>1; larger = hotter head)")
	zipfV := flag.Float64("zipf-v", 1, "Zipf value offset (>=1)")
	seed := flag.Int64("seed", 1, "RNG seed (per-worker streams derive from it)")
	nearest := flag.Bool("nearest", false, "query with nearest=1 and axis jitter instead of exact lookups")
	balanceFail := flag.Float64("balance-fail", 0, "exit nonzero if the max/min per-target ok ratio exceeds this (0 disables; needs -targets)")
	flag.Parse()

	if *workers < 1 || *requests < 1 {
		log.Fatalf("need positive -workers and -requests (got %d, %d)", *workers, *requests)
	}
	var targets []string
	if *targetsFlag != "" {
		for _, t := range strings.Split(*targetsFlag, ",") {
			if t = strings.TrimSpace(t); t != "" {
				targets = append(targets, strings.TrimRight(t, "/"))
			}
		}
		if len(targets) == 0 {
			log.Fatal("-targets has no URLs")
		}
	} else {
		targets = []string{*addr}
	}
	multi := *targetsFlag != ""
	if *balanceFail > 0 && !multi {
		log.Fatal("-balance-fail needs -targets")
	}

	// The index is the work list: every request targets a real entry, so a
	// non-200 response is the server's doing, not a bad key.
	entries := fetchIndex(targets, *store)
	if len(entries) == 0 {
		log.Fatalf("store %s has no frames", *store)
	}
	fmt.Printf("loaded index: %d frames in store %q\n", len(entries), *store)

	var issued, ok200, shed503, failed, failovers atomic.Int64
	var rr atomic.Uint64
	stats := make([]targetStats, len(targets))
	latencies := make([][]time.Duration, *workers)
	var firstFailure atomic.Value

	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < *workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(*seed + int64(w)))
			zipf := rand.NewZipf(rng, *zipfS, *zipfV, uint64(len(entries)-1))
			client := &http.Client{Timeout: 30 * time.Second}
			lats := make([]time.Duration, 0, *requests / *workers + 1)
			for issued.Add(1) <= int64(*requests) {
				e := entries[zipf.Uint64()]
				first := int(rr.Add(1)) % len(targets)
				t0 := time.Now()
				done := false
				var lastErr string
				// Client-side failover: walk the targets from the
				// round-robin pick until one answers. A 503 is an answer —
				// backpressure is respected, not retried elsewhere.
				for attempt := 0; attempt < len(targets) && !done; attempt++ {
					ti := (first + attempt) % len(targets)
					if attempt > 0 {
						failovers.Add(1)
					}
					u := frameURL(targets[ti], *store, e, *nearest, rng)
					stats[ti].req.Add(1)
					resp, err := client.Get(u)
					if err != nil {
						stats[ti].errs.Add(1)
						lastErr = fmt.Sprintf("GET %s: %v", u, err)
						continue
					}
					_, _ = io.Copy(io.Discard, resp.Body)
					resp.Body.Close()
					switch resp.StatusCode {
					case http.StatusOK:
						stats[ti].ok.Add(1)
						ok200.Add(1)
						lats = append(lats, time.Since(t0))
						done = true
					case http.StatusServiceUnavailable:
						stats[ti].shed.Add(1)
						shed503.Add(1)
						done = true
					default:
						stats[ti].errs.Add(1)
						lastErr = fmt.Sprintf("GET %s: status %d", u, resp.StatusCode)
					}
				}
				if !done {
					failed.Add(1)
					firstFailure.CompareAndSwap(nil, lastErr)
				}
			}
			latencies[w] = lats
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)

	var all []time.Duration
	for _, lats := range latencies {
		all = append(all, lats...)
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })

	total := ok200.Load() + shed503.Load() + failed.Load()
	fmt.Printf("requests:   %d total, %d ok, %d shed (503), %d failed in %v\n",
		total, ok200.Load(), shed503.Load(), failed.Load(), elapsed.Round(time.Millisecond))
	fmt.Printf("throughput: %.0f ok/s\n", float64(ok200.Load())/elapsed.Seconds())
	if len(all) > 0 {
		fmt.Printf("latency:    p50 %v  p90 %v  p99 %v  max %v\n",
			quantile(all, 0.50), quantile(all, 0.90), quantile(all, 0.99), all[len(all)-1])
	}

	exit := 0
	if multi {
		if !reportBalance(targets, stats, failovers.Load(), *balanceFail) {
			exit = 1
		}
	}

	if msg := firstFailure.Load(); msg != nil {
		log.Printf("first failure: %s", msg)
	}
	if failed.Load() > 0 || ok200.Load() == 0 {
		exit = 1
	}
	os.Exit(exit)
}

// reportBalance prints the per-target table and the max/min ok ratio,
// and returns false when failLimit > 0 and the spread exceeds it — a
// target serving nothing counts as infinitely imbalanced.
func reportBalance(targets []string, stats []targetStats, failovers int64, failLimit float64) bool {
	fmt.Printf("balance:    %d failovers\n", failovers)
	fmt.Printf("  %-40s %8s %8s %8s %8s\n", "target", "req", "ok", "503", "err")
	minOK, maxOK := int64(math.MaxInt64), int64(0)
	for i, t := range targets {
		ok := stats[i].ok.Load()
		fmt.Printf("  %-40s %8d %8d %8d %8d\n",
			t, stats[i].req.Load(), ok, stats[i].shed.Load(), stats[i].errs.Load())
		if ok < minOK {
			minOK = ok
		}
		if ok > maxOK {
			maxOK = ok
		}
	}
	ratio := math.Inf(1)
	if minOK > 0 {
		ratio = float64(maxOK) / float64(minOK)
	}
	if math.IsInf(ratio, 1) {
		fmt.Printf("  imbalance: max/min ok ratio inf (a target served nothing)\n")
	} else {
		fmt.Printf("  imbalance: max/min ok ratio %.2f\n", ratio)
	}
	if failLimit > 0 && ratio > failLimit {
		log.Printf("balance check failed: ratio %.2f exceeds -balance-fail %.2f", ratio, failLimit)
		return false
	}
	return true
}

// fetchIndex pulls and parses the store's index document, failing over
// across targets like the load loop does.
func fetchIndex(targets []string, store string) []cinemastore.Entry {
	var lastErr error
	for _, addr := range targets {
		resp, err := http.Get(addr + "/cinema/" + url.PathEscape(store) + "/index.json")
		if err != nil {
			lastErr = err
			continue
		}
		data, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			lastErr = fmt.Errorf("index fetch from %s: status %d", addr, resp.StatusCode)
			continue
		}
		if err != nil {
			lastErr = err
			continue
		}
		entries, _, err := cinemastore.DecodeIndex(data)
		if err != nil {
			log.Fatal(err)
		}
		return entries
	}
	log.Fatal(lastErr)
	return nil
}

// frameURL builds the query for one entry. Exact mode reproduces the
// entry's axis point bit-for-bit ('g'/-1 round-trips float64 through the
// query string); nearest mode jitters the axes and lets the server snap.
func frameURL(addr, store string, e cinemastore.Entry, nearest bool, rng *rand.Rand) string {
	t, phi, theta := e.Time, e.Phi, e.Theta
	q := url.Values{}
	q.Set("var", e.Variable)
	if nearest {
		t += (rng.Float64() - 0.5) * 10
		phi += (rng.Float64() - 0.5) * 0.1
		theta += (rng.Float64() - 0.5) * 0.1
		q.Set("nearest", "1")
	}
	q.Set("time", strconv.FormatFloat(t, 'g', -1, 64))
	if phi != 0 {
		q.Set("phi", strconv.FormatFloat(phi, 'g', -1, 64))
	}
	if theta != 0 {
		q.Set("theta", strconv.FormatFloat(theta, 'g', -1, 64))
	}
	return addr + "/cinema/" + url.PathEscape(store) + "/frame?" + q.Encode()
}

// quantile returns the q'th latency of a sorted sample.
func quantile(sorted []time.Duration, q float64) time.Duration {
	i := int(q * float64(len(sorted)))
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return sorted[i]
}

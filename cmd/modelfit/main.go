// Command modelfit runs the paper's full characterization campaign (both
// pipelines at 8/24/72-hour sampling), fits the Eq. 5 linear model — by
// exact three-point solve or least-squares regression — and validates it
// against every measured configuration (Fig. 8).
package main

import (
	"flag"
	"fmt"
	"log"
	"math"
	"os"

	"insituviz"
	"insituviz/internal/livemodel"
	"insituviz/internal/report"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("modelfit: ")
	useRegression := flag.Bool("regression", false, "fit by least squares over all six points instead of the paper's exact 3-point solve")
	online := flag.Bool("online", false, "also replay the measured points through the livemodel online estimator and compare against the offline least-squares fit")
	csvPath := flag.String("csv", "", "also write the measured configurations as CSV to this file")
	flag.Parse()

	base := insituviz.ReferenceWorkload(insituviz.Hours(8))
	ch, err := insituviz.Characterize(insituviz.CaddyPlatform(), base,
		[]insituviz.Seconds{insituviz.Hours(8), insituviz.Hours(24), insituviz.Hours(72)})
	if err != nil {
		log.Fatal(err)
	}

	meas := report.NewTable("Measured configurations",
		"pipeline", "sampling", "S_io (GB)", "N_viz", "time (s)", "power (kW)", "energy (MJ)")
	for _, p := range ch.Points {
		meas.AddRow(p.Kind.String(), p.Sampling.String(),
			fmt.Sprintf("%.2f", p.OutputGB), fmt.Sprintf("%d", p.Images),
			fmt.Sprintf("%.0f", float64(p.Time)),
			fmt.Sprintf("%.2f", p.Power.Kilowatts()),
			fmt.Sprintf("%.1f", p.Energy.Megajoules()))
	}
	fmt.Print(meas.String())
	fmt.Println()

	if *csvPath != "" {
		f, err := os.Create(*csvPath)
		if err != nil {
			log.Fatal(err)
		}
		if err := ch.WriteCSV(f); err != nil {
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("measurements written to %s\n\n", *csvPath)
	}

	var model *insituviz.Model
	if *useRegression {
		model, err = ch.FitRegressionModel()
	} else {
		model, err = ch.FitPaperModel()
	}
	if err != nil {
		log.Fatal(err)
	}
	method := "exact 3-point solve (paper Eq. 5)"
	if *useRegression {
		method = "least-squares regression over all points"
	}
	coef := report.NewTable("Fitted model — "+method, "coefficient", "value", "paper")
	coef.AddRow("t_sim (6 sim-months)", fmt.Sprintf("%.1f s", float64(model.TSimRef)), "603 s")
	coef.AddRow("alpha", fmt.Sprintf("%.3f s/GB", model.Alpha), "6.3 s/GB")
	coef.AddRow("beta", fmt.Sprintf("%.3f s/image-set", model.Beta), "1.2 s/image-set")
	coef.AddRow("P", model.Power.String(), "~46 kW")
	fmt.Print(coef.String())
	fmt.Println()

	if *online {
		// The online estimator, unbounded and undamped with detection
		// disabled, is exactly incremental least squares — replaying the
		// campaign must land on the offline regression coefficients.
		est := livemodel.New(livemodel.Config{
			Window: 0, Damping: 0,
			ZThreshold: math.Inf(1), HardZ: math.Inf(1), CUSUMThreshold: math.Inf(1),
		})
		for _, p := range ch.Points {
			est.Observe(livemodel.Observation{
				SIoGB: p.OutputGB,
				NViz:  float64(p.Images),
				T:     float64(p.Time),
			})
		}
		tsim, alpha, beta, ok := est.Coefficients()
		if !ok {
			log.Fatal("-online: estimator did not converge over the campaign points")
		}
		offline, err := ch.FitRegressionModel()
		if err != nil {
			log.Fatal(err)
		}
		relDiff := func(a, b float64) float64 {
			return math.Abs(a-b) / math.Max(1, math.Abs(b))
		}
		cmp := report.NewTable("Online replay vs offline least squares",
			"coefficient", "offline LS", "online RLS", "rel diff")
		cmp.AddRow("t_sim", fmt.Sprintf("%.6f s", float64(offline.TSimRef)),
			fmt.Sprintf("%.6f s", tsim), fmt.Sprintf("%.2e", relDiff(tsim, float64(offline.TSimRef))))
		cmp.AddRow("alpha", fmt.Sprintf("%.6f s/GB", offline.Alpha),
			fmt.Sprintf("%.6f s/GB", alpha), fmt.Sprintf("%.2e", relDiff(alpha, offline.Alpha)))
		cmp.AddRow("beta", fmt.Sprintf("%.6f s/image-set", offline.Beta),
			fmt.Sprintf("%.6f s/image-set", beta), fmt.Sprintf("%.2e", relDiff(beta, offline.Beta)))
		fmt.Print(cmp.String())
		worst := math.Max(relDiff(tsim, float64(offline.TSimRef)),
			math.Max(relDiff(alpha, offline.Alpha), relDiff(beta, offline.Beta)))
		verdict := "no"
		if worst <= 1e-9 {
			verdict = "yes"
		}
		fmt.Printf("online matches offline to 1e-9: %s (worst rel diff %.2e)\n\n", verdict, worst)
	}

	rep, err := ch.Validate(model)
	if err != nil {
		log.Fatal(err)
	}
	val := report.NewTable("Validation (Fig. 8)", "configuration", "measured (s)", "modeled (s)", "error")
	for i, p := range ch.Points {
		re := (rep.Predicted[i] - rep.Measured[i]) / rep.Measured[i]
		val.AddRow(fmt.Sprintf("%v @ %v", p.Kind, p.Sampling),
			fmt.Sprintf("%.0f", rep.Measured[i]),
			fmt.Sprintf("%.0f", rep.Predicted[i]),
			report.Pct(re))
	}
	fmt.Print(val.String())
	fmt.Printf("MAPE = %.3f%%, max |error| = %.3f%% (paper: < 0.5%%)\n", rep.MAPE, rep.MaxAPE)
}

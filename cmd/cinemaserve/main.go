// Command cinemaserve serves one or more Cinema image databases — the
// output of liverun / insituviz-run — over HTTP: the browsable read side
// of the paper's in-situ workflow. Frames come out of a byte-budgeted LRU
// cache with singleflight miss coalescing; overload is shed with 503 +
// Retry-After rather than queued; /metrics exposes the serving telemetry
// (under the "serve." namespace) and /trace the per-slot request
// timeline.
//
// Usage:
//
//	cinemaserve -http :8080 -db /tmp/run/cinema
//	cinemaserve -http :8080 -db runA=/tmp/a/cinema -db runB=/tmp/b/cinema \
//	    -cache-bytes 33554432 -max-inflight 32
//
// Endpoints:
//
//	/cinema/                         store listing (JSON)
//	/cinema/<store>/                 store info
//	/cinema/<store>/index.json       the database index
//	/cinema/<store>/frame?var=...    frame query (time/phi/theta axes, &nearest=1)
//	/cinema/<store>/file/<name>      frame by stored file name
//	/metrics, /trace                 serving telemetry and request timeline
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"time"

	"insituviz/internal/cinemaserve"
	"insituviz/internal/cinemastore"
	"insituviz/internal/telemetry"
	"insituviz/internal/trace"
)

// dbFlags collects repeated -db flags: "dir" or "name=dir".
type dbFlags []string

func (d *dbFlags) String() string     { return strings.Join(*d, ", ") }
func (d *dbFlags) Set(v string) error { *d = append(*d, v); return nil }

func main() {
	log.SetFlags(0)
	log.SetPrefix("cinemaserve: ")

	var dbs dbFlags
	flag.Var(&dbs, "db", "database to serve: DIR or NAME=DIR (repeatable)")
	httpAddr := flag.String("http", ":8080", "listen address (\":0\" picks a port)")
	cacheBytes := flag.Int64("cache-bytes", cinemaserve.DefaultCacheBytes, "frame cache budget in bytes")
	maxInflight := flag.Int("max-inflight", cinemaserve.DefaultMaxInflight, "admitted concurrent requests; beyond this, requests are shed with 503")
	retryAfter := flag.Duration("retry-after", cinemaserve.DefaultRetryAfter, "backoff advertised on shed responses")
	repair := flag.Bool("repair", false, "open databases through crash recovery: restore the last good index from its backup if the current one is torn, and quarantine unreferenced frame files")
	flag.Parse()

	if len(dbs) == 0 {
		log.Fatal("no databases: pass at least one -db DIR (or NAME=DIR)")
	}

	reg := telemetry.NewRegistry()
	tracer := trace.New(trace.Options{})
	srv := cinemaserve.NewServer(cinemaserve.Config{
		CacheBytes:  *cacheBytes,
		MaxInflight: *maxInflight,
		RetryAfter:  *retryAfter,
		Telemetry:   reg,
		Tracer:      tracer,
	})
	for _, spec := range dbs {
		name, dir, ok := strings.Cut(spec, "=")
		if !ok {
			dir = spec
			name = filepath.Base(filepath.Dir(filepath.Clean(dir)))
			if name == "." || name == string(filepath.Separator) {
				name = filepath.Base(filepath.Clean(dir))
			}
		}
		var st *cinemastore.Store
		var err error
		if *repair {
			var rep *cinemastore.Repair
			st, rep, err = cinemastore.RepairOpen(dir)
			if err != nil {
				log.Fatal(err)
			}
			if rep.RecoveredBackup {
				fmt.Printf("%s: torn index recovered from %s\n", name, cinemastore.BackupFile)
			}
			if len(rep.Quarantined) > 0 {
				fmt.Printf("%s: quarantined %d unreferenced files into %s/\n",
					name, len(rep.Quarantined), cinemastore.QuarantineDir)
			}
		} else if st, err = cinemastore.Open(dir); err != nil {
			log.Fatal(err)
		}
		if err := srv.Mount(name, st); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("mounted %s: %d frames, %d bytes (format %s) from %s\n",
			name, st.Len(), st.TotalBytes(), st.Version(), dir)
	}

	// The serving metrics appear under the "serve." namespace, the same
	// composition liverun uses when it mounts the server next to a live
	// run's registry — so scrapes look identical either way.
	union := telemetry.NewUnion().Add("serve.", reg)
	mux := http.NewServeMux()
	mux.Handle("/", trace.NewHandlerFrom(union, tracer))
	mux.Handle("/cinema/", http.StripPrefix("/cinema", srv.Handler()))

	addr, shutdown, err := trace.Serve(*httpAddr, mux)
	if err != nil {
		log.Fatal(err)
	}
	defer shutdown()
	fmt.Printf("serving on http://%s/ (/cinema/, /metrics, /trace)\n", addr)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt)
	<-sig
	fmt.Println("shutting down")
	// Give in-flight responses a moment to drain before the listener dies.
	time.Sleep(50 * time.Millisecond)
}

// Command cinemaserve serves one or more Cinema image databases — the
// output of liverun / insituviz-run — over HTTP: the browsable read side
// of the paper's in-situ workflow. Frames come out of a byte-budgeted LRU
// cache with singleflight miss coalescing; overload is shed with 503 +
// Retry-After rather than queued; /metrics exposes the serving telemetry
// (under the "serve." namespace) and /trace the per-slot request
// timeline.
//
// With -cluster the same binary becomes the scale-out gateway instead:
// no local databases, requests hash-route across the -peers fleet with
// -replicas-way ownership, breaker-driven failover, and the tiered cache
// (see internal/cinemacluster). The routes are identical either way, so
// clients cannot tell a gateway from a node.
//
// Usage:
//
//	cinemaserve -http :8080 -db /tmp/run/cinema
//	cinemaserve -http :8080 -db runA=/tmp/a/cinema -db runB=/tmp/b/cinema \
//	    -cache-bytes 33554432 -max-inflight 32
//	cinemaserve -http :8080 -db /tmp/run/cinema -scrub 30s
//	cinemaserve -http :8080 -cluster \
//	    -peers http://127.0.0.1:9001,http://127.0.0.1:9002,http://127.0.0.1:9003 \
//	    -replicas 2 -repair-dir node0/cinema=/srv/replica0/cinema
//
// -scrub starts the background integrity scrubber: cold frames are
// re-read and re-verified against their content digests every interval
// (bounded by -scrub-budget bytes per sweep), and divergent ones are
// quarantined from serving. In cluster mode, -repair-dir tells the
// gateway where a node's replica lives on local disk so a corrupt frame
// reported by that node can be rewritten from a healthy replica's
// bytes.
//
// Endpoints:
//
//	/cinema/                         store listing (JSON)
//	/cinema/<store>/                 store info
//	/cinema/<store>/index.json       the database index
//	/cinema/<store>/frame?var=...    frame query (time/phi/theta axes, &nearest=1)
//	/cinema/<store>/file/<name>      frame by stored file name
//	/metrics, /trace                 serving telemetry and request timeline
//
// A gateway's /metrics is the cluster union: its own counters under
// "cluster." plus every reachable node's document under "node<i>.".
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"time"

	"insituviz/internal/cinemacluster"
	"insituviz/internal/cinemaserve"
	"insituviz/internal/cinemastore"
	"insituviz/internal/faults"
	"insituviz/internal/telemetry"
	"insituviz/internal/trace"
)

// dbFlags collects repeated -db flags: "dir" or "name=dir".
type dbFlags []string

func (d *dbFlags) String() string     { return strings.Join(*d, ", ") }
func (d *dbFlags) Set(v string) error { *d = append(*d, v); return nil }

// repairDirFlags collects repeated -repair-dir flags:
// "node<i>/<store>=DIR", mapping a replica the gateway may rewrite.
type repairDirFlags struct {
	m map[string]string
}

func (r *repairDirFlags) String() string {
	parts := make([]string, 0, len(r.m))
	for k, v := range r.m {
		parts = append(parts, k+"="+v)
	}
	return strings.Join(parts, ", ")
}

func (r *repairDirFlags) Set(v string) error {
	key, dir, ok := strings.Cut(v, "=")
	if !ok || key == "" || dir == "" || !strings.Contains(key, "/") {
		return fmt.Errorf("want node<i>/<store>=DIR, got %q", v)
	}
	if r.m == nil {
		r.m = make(map[string]string)
	}
	r.m[key] = dir
	return nil
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("cinemaserve: ")

	var dbs dbFlags
	flag.Var(&dbs, "db", "database to serve: DIR or NAME=DIR (repeatable)")
	httpAddr := flag.String("http", ":8080", "listen address (\":0\" picks a port)")
	cacheBytes := flag.Int64("cache-bytes", cinemaserve.DefaultCacheBytes, "frame cache budget in bytes")
	maxInflight := flag.Int("max-inflight", cinemaserve.DefaultMaxInflight, "admitted concurrent requests; beyond this, requests are shed with 503")
	retryAfter := flag.Duration("retry-after", cinemaserve.DefaultRetryAfter, "backoff advertised on shed responses")
	repair := flag.Bool("repair", false, "open databases through crash recovery: restore the last good index from its backup if the current one is torn, and quarantine unreferenced or corrupt frame files")
	scrub := flag.Duration("scrub", 0, "background integrity scrub interval: re-read and re-verify cold frames this often (0 disables)")
	scrubBudget := flag.Int64("scrub-budget", cinemaserve.DefaultScrubBudget, "per-sweep scrub I/O budget in frame bytes")
	cluster := flag.Bool("cluster", false, "run as a cluster gateway over -peers instead of serving local databases")
	peers := flag.String("peers", "", "comma-separated serving-node base URLs (cluster mode)")
	replicas := flag.Int("replicas", cinemacluster.DefaultReplicas, "ring replication factor R: owning nodes per frame (cluster mode)")
	var repairDirs repairDirFlags
	flag.Var(&repairDirs, "repair-dir", "replica directory a gateway may repair: node<i>/<store>=DIR (repeatable; cluster mode)")
	chaos := flag.String("chaos", "", fmt.Sprintf("arm deterministic fault injection: seed=N[,profile] (profiles: %s); node mode arms the read/integrity sites, cluster mode the peer sites",
		strings.Join(faults.ProfileNames(), ", ")))
	flag.Parse()

	if *cluster {
		runGateway(*httpAddr, *peers, *replicas, *cacheBytes, *retryAfter, *chaos, repairDirs.m, dbs)
		return
	}
	if len(repairDirs.m) > 0 {
		log.Fatal("-repair-dir requires -cluster")
	}
	if *peers != "" {
		log.Fatal("-peers requires -cluster")
	}
	if len(dbs) == 0 {
		log.Fatal("no databases: pass at least one -db DIR (or NAME=DIR)")
	}

	var injector *faults.Injector
	if *chaos != "" {
		plan, err := faults.ParseSpec(*chaos)
		if err != nil {
			log.Fatal(err)
		}
		if injector, err = faults.New(plan); err != nil {
			log.Fatal(err)
		}
	}

	reg := telemetry.NewRegistry()
	tracer := trace.New(trace.Options{})
	srv := cinemaserve.NewServer(cinemaserve.Config{
		CacheBytes:  *cacheBytes,
		MaxInflight: *maxInflight,
		RetryAfter:  *retryAfter,
		Telemetry:   reg,
		Tracer:      tracer,
		Faults:      injector,
	})
	for _, spec := range dbs {
		name, dir, ok := strings.Cut(spec, "=")
		if !ok {
			dir = spec
			name = filepath.Base(filepath.Dir(filepath.Clean(dir)))
			if name == "." || name == string(filepath.Separator) {
				name = filepath.Base(filepath.Clean(dir))
			}
		}
		var st *cinemastore.Store
		var err error
		if *repair {
			var rep *cinemastore.Repair
			st, rep, err = cinemastore.RepairOpen(dir)
			if err != nil {
				log.Fatal(err)
			}
			if rep.RecoveredBackup {
				fmt.Printf("%s: torn index recovered from %s\n", name, cinemastore.BackupFile)
			}
			if len(rep.Quarantined) > 0 {
				fmt.Printf("%s: quarantined %d unreferenced files into %s/\n",
					name, len(rep.Quarantined), cinemastore.QuarantineDir)
			}
			if len(rep.CorruptQuarantined) > 0 {
				fmt.Printf("%s: quarantined %d corrupt frames into %s/ and dropped them from the index\n",
					name, len(rep.CorruptQuarantined), cinemastore.QuarantineDir)
			}
			if rep.ManifestTruncatedBytes > 0 {
				fmt.Printf("%s: truncated a %d-byte torn manifest tail\n",
					name, rep.ManifestTruncatedBytes)
			}
		} else if st, err = cinemastore.Open(dir); err != nil {
			log.Fatal(err)
		}
		// Arm the on-disk fault sites (store.bitrot, store.truncate) so a
		// chaos profile can rot frames under the serving stack.
		st.SetFaults(injector)
		if err := srv.Mount(name, st); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("mounted %s: %d frames, %d bytes (format %s) from %s\n",
			name, st.Len(), st.TotalBytes(), st.Version(), dir)
	}
	if *scrub > 0 {
		stopScrub := srv.StartScrubber(*scrub, *scrubBudget)
		defer stopScrub()
		fmt.Printf("scrubbing every %s (budget %d bytes per sweep)\n", *scrub, *scrubBudget)
	}

	// The serving metrics appear under the "serve." namespace, the same
	// composition liverun uses when it mounts the server next to a live
	// run's registry — so scrapes look identical either way.
	union := telemetry.NewUnion().Add("serve.", reg)
	mux := http.NewServeMux()
	mux.Handle("/", trace.NewHandlerFrom(union, tracer))
	mux.Handle("/cinema/", http.StripPrefix("/cinema", srv.Handler()))

	addr, shutdown, err := trace.Serve(*httpAddr, mux)
	if err != nil {
		log.Fatal(err)
	}
	defer shutdown()
	fmt.Printf("serving on http://%s/ (/cinema/, /metrics, /trace)\n", addr)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt)
	<-sig
	fmt.Println("shutting down")
	// Give in-flight responses a moment to drain before the listener dies.
	time.Sleep(50 * time.Millisecond)
}

// runGateway is cluster mode: the same routes, served by hash-routing
// across the peer fleet instead of reading local databases.
func runGateway(httpAddr, peers string, replicas int, cacheBytes int64, retryAfter time.Duration, chaos string, repairDirs map[string]string, dbs dbFlags) {
	if len(dbs) > 0 {
		log.Fatal("cluster mode routes to -peers; it does not mount -db databases")
	}
	var list []string
	for _, p := range strings.Split(peers, ",") {
		if p = strings.TrimSpace(p); p != "" {
			list = append(list, p)
		}
	}
	if len(list) == 0 {
		log.Fatal("cluster mode needs -peers URL[,URL...]")
	}

	var injector *faults.Injector
	if chaos != "" {
		plan, err := faults.ParseSpec(chaos)
		if err != nil {
			log.Fatal(err)
		}
		if injector, err = faults.New(plan); err != nil {
			log.Fatal(err)
		}
	}

	reg := telemetry.NewRegistry()
	tracer := trace.New(trace.Options{})
	gw, err := cinemacluster.NewGateway(cinemacluster.Config{
		Peers:      list,
		Replicas:   replicas,
		CacheBytes: cacheBytes,
		RetryAfter: retryAfter,
		Telemetry:  reg,
		Tracer:     tracer,
		Faults:     injector,
		RepairDirs: repairDirs,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer gw.Close()

	mux := http.NewServeMux()
	mux.Handle("/", trace.NewHandlerFrom(nil, tracer))
	// The exact pattern wins over "/": cluster metrics replace the plain
	// exposition with the fleet union.
	mux.HandleFunc("/metrics", gw.ServeMetrics)
	mux.Handle("/cinema/", http.StripPrefix("/cinema", gw.Handler()))

	addr, shutdown, err := trace.Serve(httpAddr, mux)
	if err != nil {
		log.Fatal(err)
	}
	defer shutdown()
	fmt.Printf("gateway over %d nodes (R=%d) on http://%s/ (/cinema/, /metrics, /trace)\n",
		len(list), replicas, addr)
	for i, p := range list {
		fmt.Printf("  node%d = %s\n", i, p)
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt)
	<-sig
	fmt.Println("shutting down")
	time.Sleep(50 * time.Millisecond)
}

// Command vizworker is the receiving end of the in-transit tier: a
// dedicated visualization worker that accepts per-rank field shards from
// a liverun sim over the intransit wire protocol, composites and renders
// them through the same render stack the in-process path uses, and
// writes the frames into the shared Cinema store directory.
//
// Usage:
//
//	vizworker -listen :9401 -out /tmp/run/cinema
//	liverun -transport tcp -viz-workers localhost:9401 -out /tmp/run
//
// The sim commits the store index; the worker only writes frames and
// acks the entries back, so a run spread over any number of workers
// still publishes one byte-identical database.
package main

import (
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"os/signal"
	"syscall"

	"insituviz/internal/intransit"
	"insituviz/internal/telemetry"
	"insituviz/internal/trace"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("vizworker: ")

	listen := flag.String("listen", ":9401", "TCP address to accept sim connections on (\":0\" picks a port)")
	out := flag.String("out", "", "Cinema database directory to write frames into (required; shared with the sim)")
	renderWorkers := flag.Int("render-workers", 0, "render fan-out budget in concurrent tiles per rasterizer (0 = GOMAXPROCS)")
	httpAddr := flag.String("http", "", "serve /metrics and /trace on this address (e.g. :8080; \":0\" picks a port)")
	flag.Parse()

	if *out == "" {
		log.Fatal("-out is required")
	}
	if err := os.MkdirAll(*out, 0o755); err != nil {
		log.Fatal(err)
	}

	reg := telemetry.NewRegistry()
	var tracer *trace.Tracer
	if *httpAddr != "" {
		tracer = trace.New(trace.Options{})
		addr, shutdown, err := trace.Serve(*httpAddr, trace.NewHandler(reg, tracer))
		if err != nil {
			log.Fatal(err)
		}
		defer shutdown()
		fmt.Printf("serving exposition on http://%s/ (/metrics, /trace)\n", addr)
	}

	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		log.Fatal(err)
	}
	worker, err := intransit.NewWorker(ln, intransit.WorkerConfig{
		OutDir:        *out,
		RenderWorkers: *renderWorkers,
		Telemetry:     reg,
		Tracer:        tracer,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("accepting shards on %s, writing frames to %s\n", worker.Addr(), *out)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	go func() {
		s := <-sig
		fmt.Printf("received %v, shutting down\n", s)
		worker.Close()
	}()

	if err := worker.Serve(); err != nil {
		log.Fatal(err)
	}
	samples := reg.Counter("transit.recv.samples").Value()
	fmt.Printf("served %d samples\n", samples)
}
